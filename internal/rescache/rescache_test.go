package rescache

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/explore"
	"waitfree/internal/faults"
	"waitfree/internal/program"
	"waitfree/internal/synth"
	"waitfree/internal/types"
)

func consensusSpec(im *program.Implementation, k int) KeySpec {
	return KeySpec{Kind: "consensus", Values: k, Implementation: im}
}

func mustKey(t *testing.T, spec KeySpec) Key {
	t.Helper()
	k, err := RequestKey(spec)
	if err != nil {
		t.Fatalf("RequestKey: %v", err)
	}
	return k
}

func TestRequestKeyDeterministic(t *testing.T) {
	a := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	b := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	if a != b {
		t.Fatal("same request produced different keys")
	}
}

func TestRequestKeySeparates(t *testing.T) {
	base := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	distinct := map[string]Key{
		"other impl":   mustKey(t, consensusSpec(consensus.Sticky(3), 2)),
		"other values": mustKey(t, consensusSpec(consensus.CAS(3), 3)),
		"other kind":   mustKey(t, KeySpec{Kind: "bound", Implementation: consensus.CAS(3)}),
		"memoized": mustKey(t, KeySpec{
			Kind: "consensus", Values: 2, Implementation: consensus.CAS(3),
			Explore: explore.Options{Memoize: true},
		}),
		"crash-stop faults": mustKey(t, KeySpec{
			Kind: "consensus", Values: 2, Implementation: consensus.CAS(3),
			Explore: explore.Options{Faults: faults.Model{MaxCrashes: 1}},
		}),
		// Same crash budget, different recovery semantics: a crash-recovery
		// run explores strictly more behavior and must never be served a
		// crash-stop run's cached report (or vice versa).
		"crash-recovery faults": mustKey(t, KeySpec{
			Kind: "consensus", Values: 2, Implementation: consensus.CAS(3),
			Explore: explore.Options{Faults: faults.Model{
				MaxCrashes: 1, Mode: faults.CrashRecovery, MaxRecoveries: 1}},
		}),
		"crash-recovery zero budget": mustKey(t, KeySpec{
			Kind: "consensus", Values: 2, Implementation: consensus.CAS(3),
			Explore: explore.Options{Faults: faults.Model{
				MaxCrashes: 1, Mode: faults.CrashRecovery}},
		}),
	}
	for name, k := range distinct {
		if k == base {
			t.Errorf("%s collided with the base request", name)
		}
	}
	if distinct["crash-recovery faults"] == distinct["crash-stop faults"] ||
		distinct["crash-recovery zero budget"] == distinct["crash-stop faults"] ||
		distinct["crash-recovery faults"] == distinct["crash-recovery zero budget"] {
		t.Error("fault-model variants collided with each other")
	}
}

// Values 0 normalizes to binary; MaxDepth 0 normalizes to the engine
// default — the explicit and defaulted forms are the same request.
func TestRequestKeyNormalizes(t *testing.T) {
	if mustKey(t, consensusSpec(consensus.CAS(3), 0)) != mustKey(t, consensusSpec(consensus.CAS(3), 2)) {
		t.Error("Values 0 and 2 keyed differently")
	}
	deep := consensusSpec(consensus.CAS(3), 2)
	deep.Explore.MaxDepth = explore.DefaultMaxDepth
	if mustKey(t, consensusSpec(consensus.CAS(3), 2)) != mustKey(t, deep) {
		t.Error("MaxDepth 0 and DefaultMaxDepth keyed differently")
	}
}

// Observability and scheduling knobs must not shift the key.
func TestRequestKeyIgnoresObservationalOptions(t *testing.T) {
	base := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	tuned := consensusSpec(consensus.CAS(3), 2)
	tuned.Explore.Parallelism = 8
	tuned.Explore.Symmetry = explore.SymmetryAuto
	tuned.Explore.OnProgress = func(explore.Stats) {}
	tuned.Explore.MaxNodes = 1 << 40
	if mustKey(t, tuned) != base {
		t.Fatal("observational options changed the key")
	}
}

func TestRequestKeyPermutationInvariant(t *testing.T) {
	im := consensus.CAS(3)
	perm := *im
	perm.Machines = []program.Machine{im.Machines[2], im.Machines[0], im.Machines[1]}
	if mustKey(t, consensusSpec(im, 2)) != mustKey(t, consensusSpec(&perm, 2)) {
		t.Fatal("process permutation of a symmetric implementation changed the key")
	}
}

func TestRequestKeyUncacheable(t *testing.T) {
	cases := map[string]explore.Options{
		"resume":     {ResumeFrom: &explore.Checkpoint{}},
		"memobudget": {MemoBudget: 10},
		"onleaf":     {OnLeaf: func(*explore.Leaf) error { return nil }},
		"history":    {RecordHistory: true},
	}
	for name, opts := range cases {
		spec := consensusSpec(consensus.CAS(3), 2)
		spec.Explore = opts
		if _, err := RequestKey(spec); !errors.Is(err, ErrUncacheable) {
			t.Errorf("%s: got %v, want ErrUncacheable", name, err)
		}
	}
}

func TestRequestKeySynthesisAndClassification(t *testing.T) {
	objs := []synth.Object{{
		Name: "sticky", Spec: types.StickyCell(2, 2), Init: types.StickyUnset,
	}}
	s1 := mustKey(t, KeySpec{Kind: "synthesis", Objects: objs, Synthesis: synth.Options{Depth: 2}})
	s2 := mustKey(t, KeySpec{Kind: "synthesis", Objects: objs, Synthesis: synth.Options{Depth: 3}})
	if s1 == s2 {
		t.Error("synthesis depth did not separate keys")
	}
	c1 := mustKey(t, KeySpec{Kind: "classification"})
	c2 := mustKey(t, KeySpec{Kind: "classification"})
	if c1 != c2 {
		t.Error("classification key is not deterministic")
	}
}

func TestCacheMemoryRoundTrip(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	report := []byte(`{"kind":"consensus"}`)
	if err := c.Put(key, report); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, report) {
		t.Fatalf("get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.MemoryHits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheDiskRoundTripAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	key := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	report := []byte(`{"kind":"consensus","ok":true}`)

	c1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(key, report); err != nil {
		t.Fatalf("put: %v", err)
	}

	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok || !bytes.Equal(got, report) {
		t.Fatalf("disk get = %q, %v", got, ok)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The disk hit was promoted: a second Get is a memory hit.
	if _, ok := c2.Get(key); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.MemoryHits != 1 {
		t.Fatalf("stats after promotion = %+v", st)
	}
}

// A corrupted disk entry is a miss, never an error, and is deleted so the
// next store heals it.
func TestCacheCorruptDiskEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.Hex()+fileExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the report record itself so not even salvage can save it.
	if err := os.WriteFile(path, bytes.Replace(raw, []byte(`{"ok":true}`), []byte(`{"ok":t!!e}`), 1), 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt entry not deleted: %v", err)
	}
	st := fresh.Stats()
	if st.Misses != 1 || st.Errors == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// A torn trailer leaves the checksummed report record intact; salvage
// serves it as a hit.
func TestCacheSalvagesTornTrailer(t *testing.T) {
	dir := t.TempDir()
	key := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	report := []byte(`{"ok":true}`)
	if err := c.Put(key, report); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.Hex()+fileExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := bytes.LastIndex(raw, []byte("\nend "))
	if err := os.WriteFile(path, raw[:cut+5], 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := fresh.Get(key)
	if !ok || !bytes.Equal(got, report) {
		t.Fatalf("salvage get = %q, %v", got, ok)
	}
	if st := fresh.Stats(); st.Errors == 0 {
		t.Fatal("salvage did not count the incident")
	}
}

// A salvaged entry is rewritten in place: the first reader pays for the
// torn trailer once, and every later open decodes a clean envelope.
func TestCacheHealsTornTrailerOnFirstRead(t *testing.T) {
	dir := t.TempDir()
	key := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	report := []byte(`{"ok":true}`)
	if err := c.Put(key, report); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.Hex()+fileExt)
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := bytes.LastIndex(intact, []byte("\nend "))
	if err := os.WriteFile(path, intact[:cut+5], 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(key); !ok {
		t.Fatal("salvage miss")
	}
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("healed envelope missing: %v", err)
	}
	if !bytes.Equal(healed, intact) {
		t.Fatalf("healed envelope differs from the original:\n%q\nwant:\n%q", healed, intact)
	}
	// A later process decodes cleanly: a disk hit with no new error.
	later, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := later.Get(key)
	if !ok || !bytes.Equal(got, report) {
		t.Fatalf("post-heal get = %q, %v", got, ok)
	}
	if st := later.Stats(); st.Errors != 0 || st.DiskHits != 1 {
		t.Fatalf("post-heal stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := Open(Options{MemoryBudget: 64})
	if err != nil {
		t.Fatal(err)
	}
	var keys []Key
	for i := 0; i < 4; i++ {
		k := Key{byte(i)}
		keys = append(keys, k)
		if err := c.Put(k, bytes.Repeat([]byte{byte('a' + i)}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry survived past the budget")
	}
	if _, ok := c.Get(keys[3]); !ok {
		t.Fatal("newest entry evicted")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
	// An entry bigger than the whole budget skips memory without evicting
	// what is there.
	if err := c.Put(Key{0xff}, bytes.Repeat([]byte{'x'}, 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(keys[3]); !ok {
		t.Fatal("oversized put evicted resident entries")
	}
}
