// Package rescache is a content-addressed cache for Check verdicts. A
// request's key is the SHA-256 of a canonical byte encoding of everything
// that affects its report — the implementation's behavior (via
// explore.CanonicalImplementation, so process-permuted symmetric
// implementations share an entry), specs, the pipeline kind and its
// parameters, and the verdict-relevant subset of the exploration options —
// and nothing that does not: observability hooks, parallelism, symmetry
// mode, and soft stop budgets are all excluded because the engine
// guarantees they never change a completed report. Entries live in an
// in-memory LRU with a byte budget, backed by an optional disk store in
// the internal/durable checksummed envelope format; a corrupted disk entry
// is salvaged when its record checksum survives and is otherwise deleted
// and reported as a miss, never as an error.
package rescache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"waitfree/internal/explore"
	"waitfree/internal/hierarchy"
	"waitfree/internal/program"
	"waitfree/internal/synth"
	"waitfree/internal/types"
)

// keyMagic versions the key derivation itself: bump it whenever the
// encoding below (or the semantics of any pipeline it covers) changes, so
// stale entries miss instead of serving wrong verdicts.
const keyMagic = "wfkey2"

// Key is the SHA-256 content address of a request.
type Key [sha256.Size]byte

// Hex renders the key as lowercase hex — the disk filename stem.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// ErrUncacheable marks requests whose reports must not be cached:
// resumed runs (their verdicts cover a frontier, not the request),
// MemoBudget-degraded runs (their MemoHits counter depends on eviction
// order), and runs with per-leaf callbacks or history recording (the
// callbacks are the point, and history blows up the entry size).
var ErrUncacheable = errors.New("rescache: request is not cacheable")

// KeySpec is the verdict-relevant content of a Check request, assembled
// by the caller (waitfree.Check) from its Request. Fields irrelevant to
// the spec's Kind are ignored.
type KeySpec struct {
	// Kind is the pipeline: "consensus", "bound", "elimination",
	// "classification", or "synthesis".
	Kind string
	// Values is the consensus proposal range (0 = 2); consensus only.
	Values int
	// MaxK bounds the elimination witness search (0 = 3).
	MaxK int
	// Implementation is the subject of consensus/bound/elimination.
	Implementation *program.Implementation
	// Substrate is the elimination Section 5.3 substrate, if any.
	Substrate *program.Implementation
	// Objects and Synthesis drive synthesis.
	Objects   []synth.Object
	Synthesis synth.Options
	// Explore is the full exploration options; only the verdict-relevant
	// subset is keyed, and some values make the request uncacheable.
	Explore explore.Options
}

// RequestKey derives the content address of spec. It returns
// ErrUncacheable for requests whose reports must not be cached, and
// explore.ErrUncanonical (wrapped) when the implementation's behavior has
// no bounded canonical encoding; callers should treat any error as
// "bypass the cache", not as a request failure.
func RequestKey(spec KeySpec) (Key, error) {
	if err := uncacheable(spec.Explore); err != nil {
		return Key{}, err
	}
	var b []byte
	b = append(b, keyMagic...)
	b = appendString(b, spec.Kind)
	var err error
	switch spec.Kind {
	case "consensus":
		k := spec.Values
		if k == 0 {
			k = 2
		}
		b = appendInt(b, int64(k))
		b, err = appendImplementation(b, spec.Implementation, k)
	case "bound":
		k := targetValues(spec.Implementation)
		b = appendInt(b, int64(k))
		b, err = appendImplementation(b, spec.Implementation, k)
	case "elimination":
		maxK := spec.MaxK
		if maxK == 0 {
			maxK = 3
		}
		b = appendInt(b, int64(maxK))
		b, err = appendImplementation(b, spec.Implementation, targetValues(spec.Implementation))
		if err == nil {
			if spec.Substrate != nil {
				b = append(b, 1)
				// The substrate is a 2-process binary consensus
				// implementation realizing one-use bits.
				b, err = appendImplementation(b, spec.Substrate, 2)
			} else {
				b = append(b, 0)
			}
		}
	case "classification":
		b, err = appendZoo(b)
	case "synthesis":
		b, err = appendSynthesis(b, spec.Objects, spec.Synthesis)
	default:
		return Key{}, fmt.Errorf("rescache: unknown kind %q", spec.Kind)
	}
	if err != nil {
		return Key{}, err
	}
	b = appendExplore(b, spec.Explore)
	return sha256.Sum256(b), nil
}

// uncacheable rejects option combinations whose reports are not pure
// functions of the request.
func uncacheable(o explore.Options) error {
	switch {
	case o.ResumeFrom != nil:
		return fmt.Errorf("%w: resumed run", ErrUncacheable)
	case o.MemoBudget > 0:
		return fmt.Errorf("%w: MemoBudget may degrade the run", ErrUncacheable)
	case o.OnLeaf != nil:
		return fmt.Errorf("%w: OnLeaf callback", ErrUncacheable)
	case o.RecordHistory:
		return fmt.Errorf("%w: RecordHistory", ErrUncacheable)
	}
	return nil
}

// targetValues mirrors the KindBound/KindElimination proposal range rule
// (core.targetValues): k for a multi-valued consensus target, else 2.
func targetValues(im *program.Implementation) int {
	if im != nil && im.Target != nil && im.Target.Name == "multi-consensus" {
		if k := len(im.Target.Alphabet); k >= 2 {
			return k
		}
	}
	return 2
}

// appendImplementation appends the behavioral canonical encoding of im
// driven by the k proposal values the pipeline will explore.
func appendImplementation(b []byte, im *program.Implementation, k int) ([]byte, error) {
	if im == nil {
		return nil, fmt.Errorf("rescache: nil implementation")
	}
	starts := make([]types.Invocation, k)
	for v := range starts {
		starts[v] = types.Propose(v)
	}
	enc, err := explore.CanonicalImplementation(im, starts)
	if err != nil {
		return nil, err
	}
	return appendBytes(b, enc), nil
}

// appendZoo keys the classification pipeline: the encoding of every zoo
// entry (spec and each initial state), its literature numbers (they are
// echoed into the report), and the classification bounds. A zoo change in
// a new binary therefore misses old entries.
func appendZoo(b []byte) ([]byte, error) {
	entries := hierarchy.Zoo()
	b = appendInt(b, int64(len(entries)))
	for _, e := range entries {
		b = appendInt(b, int64(len(e.Inits)))
		for _, init := range e.Inits {
			b = appendSpec(b, e.Spec, init)
		}
		b = appendString(b, e.Consensus)
		b = appendString(b, e.HM)
	}
	b = appendInt(b, hierarchy.DefaultMaxK)
	b = appendInt(b, hierarchy.DefaultReachLimit)
	return b, nil
}

// appendSpec encodes one spec+init behaviorally when its reachable state
// space is bounded, and structurally otherwise (some zoo members — fetch-
// and-add, fetch-and-cons — are legitimately unbounded). The structural
// form identifies the type by name, shape, and alphabet; keyMagic covers
// behavioral changes behind an unchanged structure, since the zoo ships
// with the binary.
func appendSpec(b []byte, spec *types.Spec, init types.State) []byte {
	if enc, err := explore.CanonicalSpec(spec, init); err == nil {
		b = append(b, 'B')
		return appendBytes(b, enc)
	}
	b = append(b, 'S')
	b = appendString(b, spec.Name)
	b = appendInt(b, int64(spec.Ports))
	b = appendBool(b, spec.Oblivious)
	b = appendBool(b, spec.Deterministic)
	b = appendInt(b, int64(len(spec.Alphabet)))
	for _, inv := range spec.Alphabet {
		b = appendString(b, inv.Op)
		b = appendInt(b, int64(inv.A))
		b = appendInt(b, int64(inv.B))
	}
	b = appendString(b, fmt.Sprintf("%T=%v", init, init))
	return b
}

// appendSynthesis keys the synthesis pipeline: each object's behavioral
// spec encoding, initial state, and effective per-process ports, plus the
// normalized search options.
func appendSynthesis(b []byte, objs []synth.Object, opts synth.Options) ([]byte, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("rescache: synthesis without objects")
	}
	b = appendInt(b, int64(len(objs)))
	for _, o := range objs {
		b = appendString(b, o.Name)
		enc, err := explore.CanonicalSpec(o.Spec, o.Init)
		if err != nil {
			return nil, err
		}
		b = appendBytes(b, enc)
		for p := 0; p < 2; p++ {
			b = appendInt(b, int64(effectivePort(o, p)))
		}
	}
	b = appendInt(b, int64(opts.Depth))
	b = appendBool(b, opts.Symmetric)
	if opts.Relabel != nil {
		b = append(b, 1)
		for p := 0; p < 2; p++ {
			b = appendInt(b, int64(len(opts.Relabel[p])))
			for _, o := range opts.Relabel[p] {
				b = appendInt(b, int64(o))
			}
		}
	} else {
		b = append(b, 0)
	}
	budget := opts.Budget
	if budget == 0 {
		budget = 1e7 // synth.SearchContext's default
	}
	b = appendInt(b, budget)
	return b, nil
}

// effectivePort mirrors synth.Object.port: nil PortOf means process p
// uses port p+1.
func effectivePort(o synth.Object, p int) int {
	if o.PortOf == nil {
		return p + 1
	}
	return o.PortOf[p]
}

// appendExplore appends the verdict-relevant exploration options. MaxDepth
// caps every path (its default is part of the verdict); Memoize changes
// the reported MemoHits counter; an enabled fault model changes every
// verdict. Parallelism, symmetry reduction, progress hooks, checkpoint
// hooks, and the soft stops (MaxNodes, StallAfter, deadlines) are all
// excluded: completed reports are identical across them, and runs they cut
// short are Partial and never stored.
func appendExplore(b []byte, o explore.Options) []byte {
	depth := o.MaxDepth
	if depth == 0 {
		depth = explore.DefaultMaxDepth
	}
	b = appendInt(b, int64(depth))
	b = appendBool(b, o.Memoize)
	if o.Faults.Enabled() {
		b = append(b, 1)
		b = appendInt(b, int64(o.Faults.MaxCrashes))
		b = appendInt(b, int64(o.Faults.Mode))
		b = appendInt(b, int64(o.Faults.MaxRecoveries))
	} else {
		b = append(b, 0)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendInt(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
