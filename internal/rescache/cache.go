package rescache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"

	"waitfree/internal/durable"
	"waitfree/internal/fsx"
)

const (
	// DefaultMemoryBudget bounds the in-memory tier when Options.
	// MemoryBudget is 0.
	DefaultMemoryBudget = 64 << 20

	// envelopeMagic and recordKind frame disk entries in the
	// internal/durable envelope format; fileExt names them.
	envelopeMagic = "waitfree result cache v1"
	recordKind    = "report"
	fileExt       = ".wfres"

	// diskFailLimit is how many consecutive disk-store failures demote the
	// disk tier to bypassed (DiskDegraded); while bypassed, one real store
	// per diskProbeEvery skipped ones probes whether the disk recovered.
	diskFailLimit  = 3
	diskProbeEvery = 64
)

// Options configures Open.
type Options struct {
	// Dir is the disk tier's directory, created if missing; "" keeps the
	// cache memory-only.
	Dir string
	// MemoryBudget bounds the in-memory tier in bytes (0 =
	// DefaultMemoryBudget). Entries larger than the budget skip memory
	// and live on disk only.
	MemoryBudget int64
	// FS is the filesystem the disk tier performs its I/O through (nil =
	// the real one). Tests pass an *fsx.FaultFS to script storage faults;
	// served bytes never depend on it — a failing FS only costs hits.
	FS fsx.FS
}

// Stats are the cache's cumulative counters. Hits = MemoryHits +
// DiskHits; Errors counts non-fatal disk incidents (corrupt entries
// healed by deletion, read/write failures) — none of them ever fail a
// lookup.
type Stats struct {
	Hits       int64 `json:"hits"`
	MemoryHits int64 `json:"memory_hits"`
	DiskHits   int64 `json:"disk_hits"`
	Misses     int64 `json:"misses"`
	Stores     int64 `json:"stores"`
	Evictions  int64 `json:"evictions"`
	Errors     int64 `json:"errors"`
	// Retries counts transient disk faults absorbed by the unified retry
	// policy; Heals counts bad disk entries repaired or removed so later
	// readers stop paying for them.
	Retries int64 `json:"retries,omitempty"`
	Heals   int64 `json:"heals,omitempty"`
	// DiskDegraded reports the disk tier is currently bypassed after
	// diskFailLimit consecutive store failures; the memory tier keeps
	// serving, and a periodic probe re-enables disk when it recovers.
	DiskDegraded bool `json:"disk_degraded,omitempty"`
}

// Outcome describes what the cache did for one request; waitfree.Check
// attaches it to the Report (unmarshaled, so cached JSON stays
// byte-identical to fresh JSON) and the CLIs log it.
type Outcome struct {
	// Key is the request's content address ("" when uncacheable).
	Key string
	// Hit reports the report was served from the cache.
	Hit bool
	// Stored reports a fresh report was written to the cache.
	Stored bool
	// Uncacheable reports the request had no cache key (with the reason),
	// so the cache was bypassed.
	Uncacheable bool
	Reason      string
	// StoreErr carries a non-fatal store failure, if any.
	StoreErr string
	// Stats snapshots the cache's cumulative counters after this request.
	Stats Stats
}

// String renders the outcome as the one-line form the CLIs log.
func (o *Outcome) String() string {
	switch {
	case o == nil:
		return "cache: off"
	case o.Uncacheable:
		return fmt.Sprintf("cache: bypass (%s)", o.Reason)
	case o.Hit:
		return fmt.Sprintf("cache: hit %.12s (hits=%d misses=%d stores=%d)",
			o.Key, o.Stats.Hits, o.Stats.Misses, o.Stats.Stores)
	case o.StoreErr != "":
		return fmt.Sprintf("cache: miss %.12s, store failed: %s", o.Key, o.StoreErr)
	case o.Stored:
		return fmt.Sprintf("cache: miss %.12s, stored (hits=%d misses=%d stores=%d)",
			o.Key, o.Stats.Hits, o.Stats.Misses, o.Stats.Stores)
	default:
		return fmt.Sprintf("cache: miss %.12s, not stored", o.Key)
	}
}

type entry struct {
	key  Key
	data []byte
}

// Cache is the two-tier content-addressed store. All methods are safe
// for concurrent use.
type Cache struct {
	dir    string
	budget int64
	fsys   fsx.FS

	mu          sync.Mutex
	used        int64
	lru         *list.List // *entry, front = most recent
	index       map[Key]*list.Element
	stats       Stats
	consecFails int64 // consecutive disk-store failures (bypass trigger)
	skipped     int64 // stores skipped while bypassed (probe cadence)
}

// Open creates a cache. With a Dir it ensures the directory exists and
// every entry written survives the process (durable envelope per key);
// without one the cache is memory-only.
func Open(opts Options) (*Cache, error) {
	fsys := fsx.Or(opts.FS)
	if opts.Dir != "" {
		if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("rescache: create cache dir: %w", err)
		}
	}
	budget := opts.MemoryBudget
	if budget == 0 {
		budget = DefaultMemoryBudget
	}
	return &Cache{
		dir:    opts.Dir,
		budget: budget,
		fsys:   fsys,
		lru:    list.New(),
		index:  make(map[Key]*list.Element),
	}, nil
}

// policy is the unified retry policy with the cache's Retries counter
// hung on it.
func (c *Cache) policy() fsx.RetryPolicy {
	return fsx.DefaultRetry.WithObserver(func(error) {
		c.mu.Lock()
		c.stats.Retries++
		c.mu.Unlock()
	})
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get returns the report bytes stored under key. Memory is consulted
// first, then disk; a disk hit is promoted into memory. Disk corruption
// is healed (the broken file is deleted) and reported as a miss — Get
// never fails.
func (c *Cache) Get(key Key) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		data := el.Value.(*entry).data
		c.stats.Hits++
		c.stats.MemoryHits++
		c.mu.Unlock()
		return append([]byte(nil), data...), true
	}
	c.mu.Unlock()

	data, ok := c.readDisk(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.stats.DiskHits++
	c.insertLocked(key, data)
	return append([]byte(nil), data...), true
}

// Put stores the report bytes under key in both tiers. A disk failure is
// returned for logging but leaves the memory tier populated; the caller
// already has its report either way. After diskFailLimit consecutive
// failures the disk tier is bypassed (DiskDegraded) so a dead disk does
// not burn a retry schedule per store; a periodic probe re-enables it.
func (c *Cache) Put(key Key, data []byte) error {
	data = append([]byte(nil), data...)
	c.mu.Lock()
	c.insertLocked(key, data)
	c.stats.Stores++
	c.mu.Unlock()
	if c.dir == "" || !c.diskAttempt() {
		return nil
	}
	env := durable.EncodeEnvelope(envelopeMagic, recordKind, []byte(key.Hex()), [][]byte{data})
	if err := durable.SaveBytesWith(context.Background(), c.fsys, c.policy(), c.path(key), env); err != nil {
		c.noteDiskFailure()
		return err
	}
	c.noteDiskOK()
	return nil
}

// diskAttempt reports whether this store should touch the disk: always
// while healthy, one probe per diskProbeEvery skipped stores while
// bypassed.
func (c *Cache) diskAttempt() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.consecFails < diskFailLimit {
		return true
	}
	c.skipped++
	return c.skipped%diskProbeEvery == 0
}

func (c *Cache) noteDiskFailure() {
	c.mu.Lock()
	c.stats.Errors++
	c.consecFails++
	if c.consecFails >= diskFailLimit {
		c.stats.DiskDegraded = true
	}
	c.mu.Unlock()
}

func (c *Cache) noteDiskOK() {
	c.mu.Lock()
	c.consecFails = 0
	c.skipped = 0
	c.stats.DiskDegraded = false
	c.mu.Unlock()
}

func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, key.Hex()+fileExt)
}

// readDisk loads and verifies the disk entry for key. Transient read
// faults are retried under the unified policy; the envelope's per-record
// checksums let a report survive a torn trailer: a decode error with an
// intact header and first record is still a hit. Anything less — an
// unreadable file included — is deleted so later readers stop paying for
// it and the next store heals the entry.
func (c *Cache) readDisk(key Key) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	var raw []byte
	err := c.policy().Do(context.Background(), func() error {
		var rerr error
		raw, rerr = c.fsys.ReadFile(c.path(key))
		return rerr
	})
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false
		}
		// An entry the disk cannot produce would fail every future reader
		// and grow Errors forever; quarantine it by deletion — a cache
		// entry is always safe to drop, and the next store rewrites it.
		c.countError()
		c.healByRemoval(key)
		return nil, false
	}
	header, records, err := durable.DecodeEnvelope(envelopeMagic, recordKind, raw)
	if string(header) != key.Hex() || len(records) < 1 {
		c.countError()
		c.healByRemoval(key)
		return nil, false
	}
	if err != nil {
		// Salvaged: the record itself verified even though the envelope
		// did not. Count the incident, serve the report, and rewrite the
		// healed envelope so only the first reader pays for the damage —
		// leaving the torn file in place would make every later process
		// re-decode the failure and bump Errors forever.
		c.countError()
		env := durable.EncodeEnvelope(envelopeMagic, recordKind, []byte(key.Hex()), [][]byte{records[0]})
		if err := durable.SaveBytesWith(context.Background(), c.fsys, c.policy(), c.path(key), env); err != nil {
			c.countError()
		} else {
			c.countHeal()
		}
	}
	return records[0], true
}

// healByRemoval deletes the disk entry for key so it cannot poison later
// lookups; the removal is itself a heal when it lands.
func (c *Cache) healByRemoval(key Key) {
	if c.fsys.Remove(c.path(key)) == nil {
		c.countHeal()
	}
}

func (c *Cache) countHeal() {
	c.mu.Lock()
	c.stats.Heals++
	c.mu.Unlock()
}

func (c *Cache) countError() {
	c.mu.Lock()
	c.stats.Errors++
	c.mu.Unlock()
}

// insertLocked adds (or refreshes) a memory entry and evicts from the LRU
// tail until the budget holds. Oversized entries skip memory entirely.
func (c *Cache) insertLocked(key Key, data []byte) {
	if int64(len(data)) > c.budget {
		return
	}
	if el, ok := c.index[key]; ok {
		c.used += int64(len(data)) - int64(len(el.Value.(*entry).data))
		el.Value.(*entry).data = data
		c.lru.MoveToFront(el)
	} else {
		c.index[key] = c.lru.PushFront(&entry{key: key, data: data})
		c.used += int64(len(data))
	}
	for c.used > c.budget {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		ev := tail.Value.(*entry)
		c.lru.Remove(tail)
		delete(c.index, ev.key)
		c.used -= int64(len(ev.data))
		c.stats.Evictions++
	}
}
