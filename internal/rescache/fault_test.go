package rescache

import (
	"bytes"
	"errors"
	"os"
	"syscall"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/fsx"
)

// Transient read faults are absorbed by the unified retry policy: the
// lookup still hits, Retries counts the absorbed attempts, and no error
// incident is recorded.
func TestCacheTransientReadFaultAbsorbed(t *testing.T) {
	dir := t.TempDir()
	key := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	report := []byte(`{"ok":true}`)
	seed, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put(key, report); err != nil {
		t.Fatal(err)
	}

	ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: fsx.OpReadFile, Nth: 1, Count: 2, Err: syscall.EIO})
	c, err := Open(Options{Dir: dir, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, report) {
		t.Fatalf("get under transient faults = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Retries != 2 || st.Errors != 0 || st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 2 retries, 0 errors, 1 disk hit", st)
	}
	if n := ff.CountOf(fsx.OpReadFile); n != 3 {
		t.Fatalf("ReadFile attempted %d times, want 3", n)
	}
}

// An entry the disk cannot produce at all (persistent read fault that is
// not ENOENT) is quarantined by deletion: the incident is counted once,
// and a reopen over a healthy disk sees a plain miss — Errors stops
// growing instead of every future reader re-paying for the bad file.
func TestCacheUnreadableEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	key := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	seed, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put(key, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}

	ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: fsx.OpReadFile, Nth: 1, Count: -1, Err: syscall.EIO})
	sick, err := Open(Options{Dir: dir, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sick.Get(key); ok {
		t.Fatal("unreadable entry served as a hit")
	}
	st := sick.Stats()
	if st.Errors != 1 || st.Heals != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 error, 1 heal, 1 miss", st)
	}
	if _, err := os.Stat(seed.path(key)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unreadable entry not quarantined by removal: %v", err)
	}

	// A healthy reopen pays nothing for the old damage: plain miss, no
	// error growth.
	fresh, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(key); ok {
		t.Fatal("phantom hit after quarantine")
	}
	if st := fresh.Stats(); st.Errors != 0 {
		t.Fatalf("errors kept growing after quarantine: %+v", st)
	}
}

// Persistent store failures walk the disk tier down the degradation
// ladder: after diskFailLimit consecutive failures the tier is bypassed
// (Put returns nil, no disk I/O, memory keeps serving), and the periodic
// probe re-enables it the moment the disk recovers.
func TestCachePutDegradationLadderAndProbe(t *testing.T) {
	dir := t.TempDir()
	// ENOSPC is permanent: no retry schedule, one CreateTemp per Put.
	ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: fsx.OpCreateTemp, Nth: 1, Count: -1, Err: syscall.ENOSPC})
	c, err := Open(Options{Dir: dir, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	keyAt := func(i int) Key { return Key{byte(i), byte(i >> 8)} }
	for i := 0; i < diskFailLimit; i++ {
		if err := c.Put(keyAt(i), []byte(`{"ok":true}`)); err == nil {
			t.Fatalf("put %d on a full disk reported success", i)
		}
	}
	st := c.Stats()
	if !st.DiskDegraded || st.Errors != diskFailLimit {
		t.Fatalf("stats after %d failures = %+v, want disk degraded", diskFailLimit, st)
	}
	// Memory tier is unaffected by the sick disk.
	if _, ok := c.Get(keyAt(0)); !ok {
		t.Fatal("memory tier lost an entry to a disk failure")
	}

	// While bypassed, stores skip the disk entirely: no new CreateTemp
	// until the probe, and Put reports success (the memory tier took it).
	before := ff.CountOf(fsx.OpCreateTemp)
	for i := 0; i < diskProbeEvery-1; i++ {
		if err := c.Put(keyAt(100+i), []byte(`{"ok":true}`)); err != nil {
			t.Fatalf("bypassed put %d returned %v", i, err)
		}
	}
	if got := ff.CountOf(fsx.OpCreateTemp); got != before {
		t.Fatalf("bypassed stores touched the disk: %d CreateTemps, want %d", got, before)
	}

	// Disk recovers; the next probe (the diskProbeEvery-th skipped store)
	// lands, and the tier is re-enabled.
	ff.SetRules()
	probeKey := mustKey(t, consensusSpec(consensus.CAS(3), 2))
	if err := c.Put(probeKey, []byte(`{"probe":true}`)); err != nil {
		t.Fatalf("probe put failed: %v", err)
	}
	if st := c.Stats(); st.DiskDegraded {
		t.Fatalf("probe success did not re-enable the disk tier: %+v", st)
	}
	// The probe's entry really reached the disk.
	fresh, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := fresh.Get(probeKey); !ok || !bytes.Equal(got, []byte(`{"probe":true}`)) {
		t.Fatalf("probe entry not durably stored: %q, %v", got, ok)
	}
}

// Every op class on the cache's write and read paths absorbs a single
// transient fault: the round trip stays intact, no error incident is
// recorded, and the retry counter shows the policy did the work.
func TestCacheEveryOpClassTransientFaultAbsorbed(t *testing.T) {
	report := []byte(`{"ok":true}`)
	for _, op := range []fsx.Op{
		fsx.OpCreateTemp, fsx.OpWrite, fsx.OpSync, fsx.OpClose,
		fsx.OpRename, fsx.OpSyncDir, fsx.OpReadFile,
	} {
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			key := mustKey(t, consensusSpec(consensus.CAS(3), 2))
			ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: op, Nth: 1, Count: 1, Err: syscall.EIO})
			c, err := Open(Options{Dir: dir, FS: ff})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put(key, report); err != nil {
				t.Fatalf("put under a transient %s fault: %v", op, err)
			}
			// A fresh cache over the same fault FS forces the read path.
			fresh, err := Open(Options{Dir: dir, FS: ff})
			if err != nil {
				t.Fatal(err)
			}
			got, ok := fresh.Get(key)
			if !ok || !bytes.Equal(got, report) {
				t.Fatalf("round trip under a transient %s fault = %q, %v", op, got, ok)
			}
			if st := c.Stats(); st.Errors != 0 {
				t.Fatalf("transient %s fault recorded an error incident: %+v", op, st)
			}
			if c.Stats().Retries+fresh.Stats().Retries == 0 {
				t.Fatalf("transient %s fault absorbed without a retry", op)
			}
		})
	}
}

// A silent bit flip on the read path must never surface corrupt report
// bytes: the checksummed envelope either still decodes (flip landed
// somewhere recoverable and the hit is byte-identical) or the lookup is
// a miss with the entry quarantined.
func TestCacheBitFlipNeverServesCorruptBytes(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		dir := t.TempDir()
		key := mustKey(t, consensusSpec(consensus.CAS(3), 2))
		report := []byte(`{"kind":"consensus","ok":true,"n":12345}`)
		clean, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if err := clean.Put(key, report); err != nil {
			t.Fatal(err)
		}
		ff := fsx.NewFaultFS(nil, seed, fsx.Rule{Op: fsx.OpReadFile, Nth: 1, Kind: fsx.FaultBitFlip})
		c, err := Open(Options{Dir: dir, FS: ff})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := c.Get(key); ok && !bytes.Equal(got, report) {
			t.Fatalf("seed %d: bit-flipped entry served corrupt bytes: %q", seed, got)
		}
	}
}
