package synth

import (
	"errors"
	"strings"
	"testing"

	"waitfree/internal/explore"
	"waitfree/internal/types"
)

func casObject() Object {
	return Object{Name: "cas", Spec: types.CompareSwap(2, 3), Init: 2}
}

func tasObject() Object {
	return Object{Name: "tas", Spec: types.TestAndSet(2), Init: 0}
}

func stickyObject() Object {
	return Object{Name: "sticky", Spec: types.StickyCell(2, 2), Init: types.StickyUnset}
}

// reverify re-checks a synthesized strategy with the independent explorer.
func reverify(t *testing.T, objects []Object, st Strategy, symmetric bool) {
	t.Helper()
	im := Implementation("synthesized", objects, st, Options{Symmetric: symmetric})
	report, err := explore.Consensus(im, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("synthesized protocol fails independent verification: %s\nstrategy:\n%s",
			report.Summary(), st.Format(objects))
	}
}

func TestSynthesizesCASProtocol(t *testing.T) {
	objects := []Object{casObject()}
	st, stats, err := Search(objects, Options{Depth: 1, Symmetric: true})
	if err != nil {
		t.Fatalf("err = %v (stats %+v)", err, stats)
	}
	reverify(t, objects, st, true)
}

func TestSynthesizesStickyProtocol(t *testing.T) {
	objects := []Object{stickyObject()}
	st, _, err := Search(objects, Options{Depth: 2, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	reverify(t, objects, st, true)
}

// TestTASAloneImpossible is the h_1 separation: a single test-and-set
// object with NO registers admits no 2-process consensus protocol, even
// asymmetric, within 3 accesses per process — the loser can never learn
// the winner's proposal.
func TestTASAloneImpossible(t *testing.T) {
	objects := []Object{tasObject()}
	for _, symmetric := range []bool{true, false} {
		_, stats, err := Search(objects, Options{Depth: 3, Symmetric: symmetric})
		if !errors.Is(err, ErrNoProtocol) {
			t.Fatalf("symmetric=%v: err = %v (stats %+v), want ErrNoProtocol", symmetric, err, stats)
		}
	}
}

// TestAugmentedQueueProtocolFound: one augmented queue suffices, and
// synthesis discovers the enqueue-then-peek protocol on its own.
func TestAugmentedQueueProtocolFound(t *testing.T) {
	objects := []Object{{Name: "aq", Spec: types.AugmentedQueue(2, 2, 2), Init: types.QueueState()}}
	st, _, err := Search(objects, Options{Depth: 2, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	reverify(t, objects, st, true)
}

// TestRegisterAloneImpossible: a single binary register admits no bounded
// protocol — the FLP-side fact cited by Theorem 5's trivial case.
func TestRegisterAloneImpossible(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exhaustive search")
	}
	objects := []Object{{Name: "r", Spec: types.Register(2, 2), Init: 0}}
	_, _, err := Search(objects, Options{Depth: 2, Symmetric: false, Budget: 1e9})
	if !errors.Is(err, ErrNoProtocol) {
		t.Fatalf("err = %v, want ErrNoProtocol", err)
	}
}

// TestSRSWBitsAloneImpossible: the paper's own register model — a pair of
// SRSW bits — admits no bounded protocol either.
func TestSRSWBitsAloneImpossible(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exhaustive search")
	}
	objects := []Object{
		{Name: "r0", Spec: types.SRSWBit(), Init: 0, PortOf: []int{2, 1}},
		{Name: "r1", Spec: types.SRSWBit(), Init: 0, PortOf: []int{1, 2}},
	}
	_, _, err := Search(objects, Options{Depth: 2, Symmetric: false, Budget: 1e9})
	if !errors.Is(err, ErrNoProtocol) {
		t.Fatalf("err = %v, want ErrNoProtocol", err)
	}
}

// TestRelabelRoleSymmetry checks the Relabel machinery: a symmetric
// strategy over virtual objects {own, other} resolves to different
// physical objects per process.
func TestRelabelRoleSymmetry(t *testing.T) {
	objects := []Object{
		{Name: "s0", Spec: types.StickyCell(2, 2), Init: types.StickyUnset},
		{Name: "s1", Spec: types.StickyCell(2, 2), Init: types.StickyUnset},
	}
	opts := Options{
		Depth:     2,
		Symmetric: true,
		// Virtual object 0 = "my cell", 1 = "the other's cell".
		Relabel: &[2][]int{{0, 1}, {1, 0}},
	}
	st, _, err := Search(objects, opts)
	if err != nil {
		t.Fatal(err)
	}
	im := Implementation("role-symmetric", objects, st, opts)
	report, err := explore.Consensus(im, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("role-symmetric protocol failed: %s\n%s", report.Summary(), st.Format(objects))
	}
}

// TestOneUseBitsAloneImpossible: one-use bits sit at level 1, so a few of
// them cannot solve 2-process consensus.
func TestOneUseBitsAloneImpossible(t *testing.T) {
	objects := []Object{
		{Name: "b0", Spec: types.OneUseBit(), Init: types.OneUseUnset},
		{Name: "b1", Spec: types.OneUseBit(), Init: types.OneUseUnset},
	}
	_, _, err := Search(objects, Options{Depth: 2, Symmetric: true, Budget: 5e7})
	if !errors.Is(err, ErrNoProtocol) {
		t.Fatalf("err = %v, want ErrNoProtocol", err)
	}
}

func TestBudgetSurfaces(t *testing.T) {
	objects := []Object{
		tasObject(),
		{Name: "r0", Spec: types.Bit(2), Init: 0},
		{Name: "r1", Spec: types.Bit(2), Init: 0},
	}
	_, _, err := Search(objects, Options{Depth: 3, Budget: 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestSearchRejectsBadDepth(t *testing.T) {
	if _, _, err := Search(nil, Options{}); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestStrategyFormat(t *testing.T) {
	objects := []Object{casObject()}
	st, _, err := Search(objects, Options{Depth: 1, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	out := st.Format(objects)
	if !strings.Contains(out, "prop=0") || !strings.Contains(out, "decide") {
		t.Errorf("Format output:\n%s", out)
	}
}

func TestActionString(t *testing.T) {
	if got := (Action{Decide: true, Value: 1}).String(); got != "decide 1" {
		t.Errorf("decide String = %q", got)
	}
	if got := (Action{Obj: 2, Inv: types.TAS}).String(); got != "obj2.tas" {
		t.Errorf("invoke String = %q", got)
	}
}

// TestMixedWeakTypesImpossible is the robustness flavor of the paper's
// conclusion: combining objects of DIFFERENT level-1 deterministic types
// (a toggle and a latch-flag) still cannot reach level 2 — no bounded
// protocol exists over the mixed set.
func TestMixedWeakTypesImpossible(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search")
	}
	objects := []Object{
		{Name: "tg", Spec: types.Toggle(2), Init: 0},
		{Name: "lf", Spec: types.LatchFlag(), Init: types.LatchFlagInit(), PortOf: []int{1, 2}},
	}
	_, _, err := Search(objects, Options{Depth: 2, Symmetric: true, Budget: 1e9})
	if !errors.Is(err, ErrNoProtocol) {
		t.Fatalf("err = %v, want ErrNoProtocol", err)
	}
}
