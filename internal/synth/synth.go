// Package synth performs bounded protocol synthesis: given a fixed set of
// shared objects (and NO registers unless they are passed as objects), it
// searches the space of ALL deterministic 2-process protocols in which
// each process performs at most Depth object accesses, for one that solves
// binary consensus — or exhaustively establishes that none exists within
// the bound.
//
// This makes the differences between Jayanti's hierarchies computational
// facts rather than definitions. For example:
//
//   - h_1(test-and-set) = 1: synthesis over ONE test-and-set object proves
//     no bounded protocol exists (the loser learns it lost but can never
//     learn the winner's proposal), while
//   - h_1^r(test-and-set) = 2: adding two SRSW bits to the object set
//     makes synthesis find the classic announce/elect/adopt protocol, and
//   - h_m(test-and-set) = 2: the Theorem 5 pipeline (package core) builds
//     the register-free many-object protocol.
//
// A protocol here is a strategy: a function from (process, proposal,
// observation sequence) to the next action — an invocation on some object,
// or a decision. The searcher explores the AND-OR game between the
// protocol designer (choosing actions at unassigned observation points)
// and the adversary scheduler (choosing interleavings and nondeterministic
// resolutions), backtracking on agreement or validity violations.
package synth

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// Errors reported by Search.
var (
	// ErrBudget: the assignment budget was exhausted before the search
	// completed; the verdict is unknown.
	ErrBudget = errors.New("synth: search budget exhausted")
	// ErrNoProtocol: the search space is exhausted and no protocol exists
	// within the depth bound.
	ErrNoProtocol = errors.New("synth: no protocol exists within the bound")
)

// Object is one shared object available to the synthesized protocol.
// PortOf assigns each process its port (nil means process p uses port
// p+1). Port-aware objects such as SRSW bits prune the search sharply:
// actions illegal on a process's port die immediately.
type Object struct {
	Name   string
	Spec   *types.Spec
	Init   types.State
	PortOf []int
}

// port returns process p's port on the object.
func (o Object) port(p int) int {
	if o.PortOf == nil {
		return p + 1
	}
	return o.PortOf[p]
}

// Options configures a search.
type Options struct {
	// Depth is the maximum number of object accesses per process.
	Depth int
	// Symmetric shares one strategy between the two processes. Symmetric
	// search is faster; asymmetric search (the default) is required for a
	// conclusive negative verdict.
	Symmetric bool
	// Relabel, if non-nil, maps each process's VIRTUAL object indices to
	// physical ones: an action on object o by process p touches physical
	// object Relabel[p][o]. Combined with Symmetric, this expresses
	// role-symmetric protocols ("write MY bit, read the OTHER's bit") with
	// one strategy — the classic symmetry reduction that makes positive
	// searches over announce-style object sets tractable.
	Relabel *[2][]int
	// Budget bounds the number of action assignments tried (0 = 1e7).
	Budget int64
}

// phys resolves process p's virtual object index to a physical one.
func (o Options) phys(p, obj int) int {
	if o.Relabel == nil {
		return obj
	}
	return o.Relabel[p][obj]
}

// Action is one strategy decision: either invoke Inv on object Obj, or
// decide Value.
type Action struct {
	Decide bool
	Value  int
	Obj    int
	Inv    types.Invocation
}

// String renders the action.
func (a Action) String() string {
	if a.Decide {
		return fmt.Sprintf("decide %d", a.Value)
	}
	return fmt.Sprintf("obj%d.%v", a.Obj, a.Inv)
}

// Key identifies a strategy point: what a process knows.
type Key struct {
	Proc     int // always 0 under Symmetric
	Proposal int
	Obs      string
}

// Strategy is a (partial) protocol: the searcher returns a total-enough
// strategy covering every reachable observation point.
type Strategy map[Key]Action

// Stats reports search effort.
type Stats struct {
	Assignments int64 `json:"assignments"`
	Configs     int64 `json:"configs"`
}

// ctxCheckEvery is the configuration period at which the searcher polls
// its context; cancellation latency is bounded by the time to expand this
// many game configurations.
const ctxCheckEvery = 1024

// Search looks for a 2-process binary consensus protocol over the given
// objects. On success it returns the strategy; if the bounded space is
// exhausted it returns ErrNoProtocol; if the budget runs out, ErrBudget.
func Search(objects []Object, opts Options) (Strategy, *Stats, error) {
	return SearchContext(context.Background(), objects, opts)
}

// SearchContext is Search under a context: cancellation or deadline
// expiry aborts the search within ctxCheckEvery configurations and
// returns ctx.Err() together with the effort spent so far.
func SearchContext(ctx context.Context, objects []Object, opts Options) (Strategy, *Stats, error) {
	if opts.Depth < 1 {
		return nil, nil, fmt.Errorf("synth: depth must be positive")
	}
	if opts.Budget == 0 {
		opts.Budget = 1e7
	}
	s := &searcher{
		ctx:      ctx,
		objects:  objects,
		opts:     opts,
		strategy: make(Strategy),
		stats:    &Stats{},
	}
	root := cfg{}
	root.objs = make([]types.State, len(objects))
	for i := range objects {
		root.objs[i] = objects[i].Init
	}
	// All four proposal-vector roots must verify under ONE strategy.
	// Mixed-proposal roots go first: they constrain agreement across
	// differing proposals, which prunes wrong strategies soonest.
	pendings := make([]cfg, 0, 4)
	for _, mask := range []int{1, 2, 0, 3} {
		c := root
		c.objs = append([]types.State(nil), root.objs...)
		c.procs[0] = pstate{Prop: mask & 1}
		c.procs[1] = pstate{Prop: (mask >> 1) & 1}
		pendings = append(pendings, c)
	}
	ok, _, err := s.solve(pendings)
	if err != nil {
		return nil, s.stats, err
	}
	if !ok {
		return nil, s.stats, ErrNoProtocol
	}
	return s.strategy, s.stats, nil
}

// pstate is one process's knowledge: its proposal, its observation string,
// and its decision once made.
type pstate struct {
	Prop    int
	Obs     string
	Steps   int
	Done    bool
	Decided int
}

// cfg is a configuration of the synthesis game. deps records the strategy
// keys consulted along the path to this configuration — the dependency set
// for conflict-directed backjumping.
type cfg struct {
	objs  []types.State
	procs [2]pstate
	deps  []Key
}

// conflict is a set of strategy keys a failure depended on.
type conflict map[Key]struct{}

func conflictOf(keys []Key) conflict {
	c := make(conflict, len(keys))
	for _, k := range keys {
		c[k] = struct{}{}
	}
	return c
}

func (c conflict) merge(o conflict) conflict {
	if c == nil {
		c = make(conflict, len(o))
	}
	for k := range o {
		c[k] = struct{}{}
	}
	return c
}

type searcher struct {
	ctx      context.Context
	objects  []Object
	opts     Options
	strategy Strategy
	stats    *Stats
}

func (s *searcher) key(p int, ps pstate) Key {
	proc := p
	if s.opts.Symmetric {
		proc = 0
	}
	return Key{Proc: proc, Proposal: ps.Prop, Obs: ps.Obs}
}

// virtualCount returns the size of the strategy's object index space.
func (s *searcher) virtualCount() int {
	if s.opts.Relabel != nil {
		return len(s.opts.Relabel[0])
	}
	return len(s.objects)
}

// candidates enumerates the actions available at an observation point.
// Decisions come last so the searcher prefers gathering information first
// (found protocols read better; completeness is unaffected). Under
// relabeling, alphabets are taken from process 0's physical object; the
// caller must relabel between objects of identical specs.
func (s *searcher) candidates(ps pstate) []Action {
	var out []Action
	if ps.Steps < s.opts.Depth {
		for obj := 0; obj < s.virtualCount(); obj++ {
			spec := s.objects[s.opts.phys(0, obj)].Spec
			for _, inv := range spec.Alphabet {
				out = append(out, Action{Obj: obj, Inv: inv})
			}
		}
	}
	out = append(out, Action{Decide: true, Value: 0}, Action{Decide: true, Value: 1})
	return out
}

// solve processes the AND-list of configurations that must all verify
// under the current strategy, extending the strategy at unassigned points.
// On failure it returns the conflict set: the strategy keys the failure
// depended on, which lets choice points whose key is not in the set
// backjump past their remaining candidates (conflict-directed
// backjumping).
func (s *searcher) solve(pending []cfg) (bool, conflict, error) {
	if len(pending) == 0 {
		return true, nil, nil
	}
	s.stats.Configs++
	if s.stats.Configs%ctxCheckEvery == 0 {
		if err := s.ctx.Err(); err != nil {
			return false, nil, err
		}
	}
	c := pending[0]
	rest := pending[1:]

	if c.procs[0].Done && c.procs[1].Done {
		if c.procs[0].Decided != c.procs[1].Decided {
			return false, conflictOf(c.deps), nil // agreement violated
		}
		d := c.procs[0].Decided
		if d != c.procs[0].Prop && d != c.procs[1].Prop {
			return false, conflictOf(c.deps), nil // validity violated
		}
		return s.solve(rest)
	}

	// Build the AND-children: one step per live process. If some live
	// process's strategy point is unassigned, branch on it and retry.
	var children []cfg
	for p := 0; p < 2; p++ {
		if c.procs[p].Done {
			continue
		}
		key := s.key(p, c.procs[p])
		act, assigned := s.strategy[key]
		if !assigned {
			total := make(conflict)
			for _, cand := range s.candidates(c.procs[p]) {
				s.stats.Assignments++
				if s.stats.Assignments > s.opts.Budget {
					return false, nil, fmt.Errorf("%w: %d assignments", ErrBudget, s.stats.Assignments)
				}
				s.strategy[key] = cand
				ok, conf, err := s.solve(pending)
				if err != nil {
					return false, nil, err
				}
				if ok {
					return true, nil, nil
				}
				delete(s.strategy, key)
				if _, depends := conf[key]; !depends {
					// The failure does not involve this choice: no other
					// candidate can help — backjump with the same conflict.
					return false, conf, nil
				}
				delete(conf, key)
				total = total.merge(conf)
			}
			return false, total, nil
		}
		kids, ok := s.step(c, p, act, key)
		if !ok {
			// Illegal invocation: dead regardless of deeper choices, but
			// dependent on the path and this key.
			conf := conflictOf(c.deps)
			conf[key] = struct{}{}
			return false, conf, nil
		}
		children = append(children, kids...)
	}
	return s.solve(append(children, rest...))
}

// step applies action act for process p (consulted at strategy point key),
// returning the child configurations (several under nondeterministic
// objects), each carrying key in its dependency set.
func (s *searcher) step(c cfg, p int, act Action, key Key) ([]cfg, bool) {
	if act.Decide {
		child := c.clone(key)
		child.procs[p].Done = true
		child.procs[p].Decided = act.Value
		return []cfg{child}, true
	}
	obj := s.opts.phys(p, act.Obj)
	decl := s.objects[obj]
	ts := decl.Spec.Step(c.objs[obj], decl.port(p), act.Inv)
	if len(ts) == 0 {
		return nil, false
	}
	out := make([]cfg, 0, len(ts))
	for _, t := range ts {
		child := c.clone(key)
		child.objs[obj] = t.Next
		child.procs[p].Obs += encodeResp(t.Resp)
		child.procs[p].Steps++
		out = append(out, child)
	}
	return out, true
}

// clone copies the configuration and appends key to its dependency set.
func (c cfg) clone(key Key) cfg {
	d := c
	d.objs = append([]types.State(nil), c.objs...)
	d.deps = append(append([]Key(nil), c.deps...), key)
	return d
}

func encodeResp(r types.Response) string {
	return fmt.Sprintf("%s:%d;", r.Label, r.Val)
}

// Format renders a strategy sorted by key for reports and tests.
func (st Strategy) Format(objects []Object) string {
	keys := make([]Key, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Proposal != b.Proposal {
			return a.Proposal < b.Proposal
		}
		return a.Obs < b.Obs
	})
	var sb strings.Builder
	for _, k := range keys {
		act := st[k]
		label := act.String()
		if !act.Decide && act.Obj < len(objects) {
			label = fmt.Sprintf("%s.%v", objects[act.Obj].Name, act.Inv)
		}
		fmt.Fprintf(&sb, "p%d prop=%d obs=%q -> %s\n", k.Proc, k.Proposal, k.Obs, label)
	}
	return sb.String()
}

// Implementation converts a synthesized strategy into a runnable
// implementation (package program), so the explorer can independently
// re-verify it. opts must be the Options the strategy was found with
// (Symmetric and Relabel affect interpretation).
func Implementation(name string, objects []Object, st Strategy, opts Options) *program.Implementation {
	symmetric := opts.Symmetric
	decls := make([]program.ObjectDecl, len(objects))
	for i, o := range objects {
		ports := o.PortOf
		if ports == nil {
			ports = program.AllPorts(2)
		}
		decls[i] = program.ObjectDecl{
			Name:   o.Name,
			Spec:   o.Spec,
			Init:   o.Init,
			PortOf: ports,
		}
	}
	// runState tracks the observation plus whether an invocation is in
	// flight (so the next response must be folded in).
	type runState struct {
		Prop    int
		Obs     string
		Pending bool
	}
	machine := func(p int) program.Machine {
		return program.FuncMachine{
			StartFn: func(inv types.Invocation, _ any) any {
				return runState{Prop: inv.A}
			},
			NextFn: func(state any, resp types.Response) (program.Action, any) {
				ps, ok := state.(runState)
				if !ok {
					panic("synth: machine driven with foreign state")
				}
				if ps.Pending {
					ps.Obs += encodeResp(resp)
					ps.Pending = false
				}
				proc := p
				if symmetric {
					proc = 0
				}
				act, assigned := st[Key{Proc: proc, Proposal: ps.Prop, Obs: ps.Obs}]
				if !assigned {
					// Unreachable for strategies returned by Search.
					return program.ReturnAction(types.ValOf(ps.Prop), nil), ps
				}
				if act.Decide {
					return program.ReturnAction(types.ValOf(act.Value), nil), ps
				}
				ps.Pending = true
				return program.InvokeAction(opts.phys(p, act.Obj), act.Inv), ps
			},
		}
	}
	return &program.Implementation{
		Name:     name,
		Target:   types.Consensus(2),
		Procs:    2,
		Objects:  decls,
		Machines: []program.Machine{machine(0), machine(1)},
	}
}
