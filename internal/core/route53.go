package core

import (
	"context"
	"fmt"

	"waitfree/internal/explore"
	"waitfree/internal/onebit"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file implements the THIRD case of Theorem 5 — the h_m(T) >= 2 route
// (Section 5.3). When T is nondeterministic, the Section 5.2 witness
// machinery does not apply; instead, every one-use bit is realized from a
// REGISTER-FREE 2-process consensus implementation over objects of T (the
// h_m >= 2 witness): the bit's reader proposes 0, its writer proposes 1.

// OneUseBitsToConsensus performs the Section 5.3 replacement: every
// one-use bit becomes a private copy of the substrate's objects, with
// reads running the substrate's process-0 program bound to propose(0) and
// writes its process-1 program bound to propose(1).
//
// The substrate must be a REGISTER-FREE 2-process consensus implementation
// (otherwise the output would smuggle registers back in).
func OneUseBitsToConsensus(im *program.Implementation, substrate *program.Implementation) (*program.Implementation, error) {
	if substrate.Procs != 2 {
		return nil, fmt.Errorf("core: substrate has %d processes, need 2", substrate.Procs)
	}
	for i := range substrate.Objects {
		name := substrate.Objects[i].Spec.Name
		if name == registerSpecName || name == "register" || name == "bit" || name == oneUseSpecName {
			return nil, fmt.Errorf("%w: substrate object %d has type %q", ErrUnsupportedRegister, i, name)
		}
	}
	selected := make(map[int]replacement)
	for i := range im.Objects {
		decl := &im.Objects[i]
		if decl.Spec.Name != oneUseSpecName {
			continue
		}
		readerProc, writerProc := -1, -1
		for p, port := range decl.PortOf {
			switch port {
			case 1:
				readerProc = p
			case 2:
				writerProc = p
			}
		}
		if readerProc < 0 || writerProc < 0 {
			return nil, fmt.Errorf("core: one-use bit %s lacks a reader or writer process", decl.Name)
		}
		rp, wp := readerProc, writerProc
		selected[i] = replacement{
			Decls: substrateDecls(substrate, im.Procs, rp, wp),
			MachinesFor: func(p, base int) map[string]program.Machine {
				decls, read, write, err := onebit.FromConsensus(substrate, im.Procs, rp, wp, base)
				_ = decls
				if err != nil {
					// Surface construction failures as nil machine maps;
					// replaceObjects validation will reject the result.
					return nil
				}
				switch p {
				case rp:
					return map[string]program.Machine{types.OpRead: read}
				case wp:
					return map[string]program.Machine{types.OpWrite: write}
				default:
					return nil
				}
			},
		}
	}
	return replaceObjects(im, im.Name+"+consensus", selected)
}

// substrateDecls re-bases one private copy of the substrate's objects for
// the host implementation.
func substrateDecls(substrate *program.Implementation, procs, readerProc, writerProc int) []program.ObjectDecl {
	decls, _, _, err := onebit.FromConsensus(substrate, procs, readerProc, writerProc, 0)
	if err != nil {
		return nil
	}
	return decls
}

// EliminateRegistersVia53 runs the full pipeline using the Section 5.3
// route: Section 4.2 bounds, Section 4.3 one-use bits, and then the given
// register-free consensus substrate (the h_m >= 2 witness for the
// implementation's type) in place of the Section 5.2 witness. Both
// endpoints are verified exhaustively.
func EliminateRegistersVia53(im *program.Implementation, substrate *program.Implementation, opts explore.Options) (*Report, error) {
	return EliminateRegistersVia53Context(context.Background(), im, substrate, opts)
}

// EliminateRegistersVia53Context is EliminateRegistersVia53 under a
// context: both endpoint verifications honor ctx cancellation/deadlines
// and publish engine progress via opts.OnProgress.
func EliminateRegistersVia53Context(ctx context.Context, im *program.Implementation, substrate *program.Implementation, opts explore.Options) (*Report, error) {
	compiled, err := CompileSRSWRegisters(im)
	if err != nil {
		return nil, err
	}
	inputReport, err := BoundContext(ctx, compiled, opts)
	if err != nil {
		return nil, err
	}
	bounds, err := RegisterBounds(compiled, inputReport)
	if err != nil {
		return nil, err
	}
	step1, err := RegistersToOneUseBits(compiled, bounds)
	if err != nil {
		return nil, err
	}
	out, err := OneUseBitsToConsensus(step1, substrate)
	if err != nil {
		return nil, err
	}
	outputReport, err := explore.ConsensusKContext(ctx, out, targetValues(im), opts)
	if err != nil {
		return nil, err
	}
	typeName := "(substrate objects)"
	if len(substrate.Objects) > 0 {
		typeName = substrate.Objects[0].Spec.Name
	}
	report := &Report{
		Input:               im,
		Output:              out,
		InputName:           im.Name,
		OutputName:          out.Name,
		InputReport:         inputReport,
		OutputReport:        outputReport,
		Bounds:              bounds,
		TypeName:            typeName,
		RegistersEliminated: len(bounds),
		OneUseBitsUsed:      step1.CountObjects(oneUseSpecName),
		TypeObjectsAdded:    out.CountObjects(typeName) - im.CountObjects(typeName),
	}
	if outputReport.Partial {
		return report, fmt.Errorf("%w: transformed implementation: %s", ErrInconclusive, outputReport.Summary())
	}
	if !outputReport.OK() {
		return report, fmt.Errorf("core: transformed implementation failed verification: %s", outputReport.Summary())
	}
	return report, nil
}
