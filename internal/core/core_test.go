package core

import (
	"errors"
	"strings"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/explore"
	"waitfree/internal/program"
	rt "waitfree/internal/runtime"
	"waitfree/internal/sched"
	"waitfree/internal/types"
)

func TestBoundRejectsBrokenInput(t *testing.T) {
	_, err := Bound(consensus.NaiveRegister2(), explore.Options{})
	if !errors.Is(err, ErrNotWaitFree) {
		t.Fatalf("err = %v, want ErrNotWaitFree", err)
	}
}

func TestRegisterBoundsTAS2(t *testing.T) {
	im := consensus.TAS2()
	report, err := Bound(im, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := RegisterBounds(im, report)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 2 {
		t.Fatalf("found %d registers, want 2", len(bounds))
	}
	for _, b := range bounds {
		if b.R != 1 || b.W != 1 {
			t.Errorf("register %s: bounds r=%d w=%d, want 1/1", b.Name, b.R, b.W)
		}
	}
}

func TestRegisterBoundsRejectsGeneralRegisters(t *testing.T) {
	im := consensus.NaiveRegister2() // uses multi-writer registers
	report, err := explore.Consensus(im, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RegisterBounds(im, report); !errors.Is(err, ErrUnsupportedRegister) {
		t.Fatalf("err = %v, want ErrUnsupportedRegister", err)
	}
}

func TestInferType(t *testing.T) {
	spec, inits, err := InferType(consensus.Queue2())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "queue" || len(inits) != 1 {
		t.Fatalf("inferred %q with %d inits", spec.Name, len(inits))
	}
	if _, _, err := InferType(&program.Implementation{Name: "empty", Procs: 1}); !errors.Is(err, ErrNoTypeObjects) {
		t.Fatalf("err = %v, want ErrNoTypeObjects", err)
	}
}

// TestEliminateRegistersAllProtocols is Experiment E6 in miniature: the
// full Theorem 5 pipeline on every register-using 2-process protocol, with
// exhaustive verification of the register-free output.
func TestEliminateRegistersAllProtocols(t *testing.T) {
	for _, im := range consensus.RegisterUsing() {
		im := im
		t.Run(im.Name, func(t *testing.T) {
			report, err := EliminateRegisters(im, explore.Options{}, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !report.OutputReport.OK() {
				t.Fatalf("output failed: %s", report.OutputReport.Summary())
			}
			// The output must be register-free.
			if n := report.Output.CountObjects("srsw-bit"); n != 0 {
				t.Errorf("output still has %d registers", n)
			}
			if n := report.Output.CountObjects("one-use-bit"); n != 0 {
				t.Errorf("output still has %d one-use bits", n)
			}
			// Both registers had bounds r=w=1, so each becomes
			// (1+1)*1 = 2 one-use bits, each one T object.
			if report.OneUseBitsUsed != 4 {
				t.Errorf("one-use bits = %d, want 4", report.OneUseBitsUsed)
			}
			if report.TypeObjectsAdded != 4 {
				t.Errorf("T objects added = %d, want 4", report.TypeObjectsAdded)
			}
			// Output uses only objects of T.
			typeName := report.TypeName
			for i := range report.Output.Objects {
				if got := report.Output.Objects[i].Spec.Name; got != typeName {
					t.Errorf("object %d has type %q, want %q", i, got, typeName)
				}
			}
			if !strings.Contains(report.Summary(), "ok=true") {
				t.Errorf("summary: %s", report.Summary())
			}
		})
	}
}

// TestEliminatedOutputsSolo checks the validity corner of every
// transformed protocol: a process running alone decides its own value.
func TestEliminatedOutputsSolo(t *testing.T) {
	for _, mk := range consensus.RegisterUsing() {
		report, err := EliminateRegisters(mk, explore.Options{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 2; p++ {
			for v := 0; v <= 1; v++ {
				states := report.Output.InitialStates()
				res, err := program.Solo(report.Output, states, p, types.Propose(v), nil, 1000)
				if err != nil {
					t.Fatalf("%s: solo p%d propose(%d): %v", report.Output.Name, p, v, err)
				}
				if res.Resp != types.ValOf(v) {
					t.Errorf("%s: solo p%d propose(%d) decided %v", report.Output.Name, p, v, res.Resp)
				}
			}
		}
	}
}

// TestPipelineStepsIndividually exercises the two rewriting steps
// separately: after step 2 the implementation still verifies (with one-use
// bits present), and after step 3 it verifies register-free.
func TestPipelineStepsIndividually(t *testing.T) {
	im := consensus.TAS2()
	report, err := Bound(im, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := RegisterBounds(im, report)
	if err != nil {
		t.Fatal(err)
	}
	step1, err := RegistersToOneUseBits(im, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if n := step1.CountObjects("one-use-bit"); n != 4 {
		t.Fatalf("step1 one-use bits = %d, want 4", n)
	}
	if n := step1.CountObjects("srsw-bit"); n != 0 {
		t.Fatalf("step1 registers = %d, want 0", n)
	}
	mid, err := explore.Consensus(step1, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !mid.OK() {
		t.Fatalf("intermediate implementation failed: %s\n%v", mid.Summary(), mid.Violation)
	}
	// One-use bit discipline holds in every execution.
	for obj := range step1.Objects {
		if step1.Objects[obj].Spec.Name != "one-use-bit" {
			continue
		}
		if mid.OpAccess[obj][types.OpRead] > 1 || mid.OpAccess[obj][types.OpWrite] > 1 {
			t.Errorf("one-use bit %d over-used: %v", obj, mid.OpAccess[obj])
		}
	}
}

// TestEliminateWithMemoization checks the pipeline under the memoized
// explorer (the ablation configuration) produces the same verdict.
func TestEliminateWithMemoization(t *testing.T) {
	plain, err := EliminateRegisters(consensus.TAS2(), explore.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	memo, err := EliminateRegisters(consensus.TAS2(), explore.Options{Memoize: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plain.OutputReport.Depth != memo.OutputReport.Depth {
		t.Errorf("depths differ: %d vs %d", plain.OutputReport.Depth, memo.OutputReport.Depth)
	}
	if plain.OutputReport.Leaves != memo.OutputReport.Leaves {
		t.Errorf("leaves differ: %d vs %d", plain.OutputReport.Leaves, memo.OutputReport.Leaves)
	}
}

// TestOutputDepthGrowth documents the cost shape: the transformed
// implementation's D grows versus the input's (each register access
// becomes up to r+w+1 object accesses, each scaled by the witness
// sequence length k).
func TestOutputDepthGrowth(t *testing.T) {
	report, err := EliminateRegisters(consensus.TAS2(), explore.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if report.OutputReport.Depth <= report.InputReport.Depth {
		t.Errorf("output D = %d not larger than input D = %d",
			report.OutputReport.Depth, report.InputReport.Depth)
	}
}

// TestEliminateThreeProcess runs the pipeline on the 3-process protocol:
// six SRSW announcement registers are eliminated and the register-free
// output is verified exhaustively over all 8 proposal vectors.
func TestEliminateThreeProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 3-process exploration")
	}
	report, err := EliminateRegisters(consensus.CASRegister3(), explore.Options{Memoize: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OutputReport.OK() {
		t.Fatalf("output failed: %s", report.OutputReport.Summary())
	}
	if report.RegistersEliminated != 6 {
		t.Errorf("registers eliminated = %d, want 6", report.RegistersEliminated)
	}
	// Each register has r = w = 1, so 2 one-use bits each.
	if report.OneUseBitsUsed != 12 {
		t.Errorf("one-use bits = %d, want 12", report.OneUseBitsUsed)
	}
	if report.TypeName != "compare-and-swap" {
		t.Errorf("inferred type %q", report.TypeName)
	}
	for i := range report.Output.Objects {
		if got := report.Output.Objects[i].Spec.Name; got != "compare-and-swap" {
			t.Errorf("object %d has type %q", i, got)
		}
	}
}

// TestEliminatedOutputCrashTolerance drives a transformed protocol in the
// concurrent runtime with crash injection: whatever step the crashed
// process stops at, the survivor must still decide a proposed value —
// wait-freedom of the register-free output under stopping failures.
func TestEliminatedOutputCrashTolerance(t *testing.T) {
	report, err := EliminateRegisters(consensus.TAS2(), explore.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := report.Output
	// The transformed protocol's executions are short; sweep all crash
	// points for each crashing process.
	maxSteps := report.OutputReport.Depth
	for crashProc := 0; crashProc < 2; crashProc++ {
		for crashAfter := 0; crashAfter <= maxSteps; crashAfter++ {
			r, err := rt.New(out, sched.NewCrash(map[int]int{crashProc: crashAfter}), nil)
			if err != nil {
				t.Fatal(err)
			}
			scripts := [][]types.Invocation{
				{types.Propose(crashProc)}, {types.Propose(1 - crashProc)},
			}
			outcome, err := r.Run(scripts, nil)
			if err != nil {
				t.Fatalf("crash p%d@%d: %v", crashProc, crashAfter, err)
			}
			survivor := 1 - crashProc
			if len(outcome.Responses[survivor]) != 1 {
				t.Fatalf("crash p%d@%d: survivor did not decide", crashProc, crashAfter)
			}
			d := outcome.Responses[survivor][0]
			if d.Val != 0 && d.Val != 1 {
				t.Fatalf("crash p%d@%d: invalid decision %v", crashProc, crashAfter, d)
			}
			// If both processes decided, they must agree.
			if len(outcome.Responses[crashProc]) == 1 {
				if outcome.Responses[crashProc][0] != d {
					t.Fatalf("crash p%d@%d: disagreement %v vs %v",
						crashProc, crashAfter, outcome.Responses[crashProc][0], d)
				}
			}
		}
	}
}

// TestEliminatedOutputUnderTokenScheduler samples seeded global
// interleavings of a transformed protocol — complementary evidence to the
// exhaustive explorer on the same object.
func TestEliminatedOutputUnderTokenScheduler(t *testing.T) {
	report, err := EliminateRegisters(consensus.Queue2(), explore.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 30; seed++ {
		tok := sched.NewToken(2, seed, nil)
		r, err := rt.New(report.Output, tok, nil)
		if err != nil {
			t.Fatal(err)
		}
		outcome, err := r.Run([][]types.Invocation{{types.Propose(0)}, {types.Propose(1)}}, nil)
		tok.Stop()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if outcome.Responses[0][0] != outcome.Responses[1][0] {
			t.Fatalf("seed %d: disagreement %v vs %v", seed,
				outcome.Responses[0][0], outcome.Responses[1][0])
		}
	}
}

// TestEliminateVia53 exercises Theorem 5's THIRD case: the input's type is
// nondeterministic (noisy-sticky), so the Section 5.2 witness machinery is
// unavailable — and indeed the deterministic-route pipeline refuses — but
// h_m(T) >= 2 supplies a register-free consensus substrate from which the
// one-use bits are realized (Section 5.3). The output uses only
// noisy-sticky objects and verifies over all adversary resolutions.
func TestEliminateVia53(t *testing.T) {
	input := consensus.NoisySticky2R()

	// The deterministic route must refuse the nondeterministic type.
	if _, err := EliminateRegisters(input, explore.Options{}, 3); err == nil {
		t.Fatal("Section 5.2 route accepted a nondeterministic type")
	}

	report, err := EliminateRegistersVia53(input, consensus.NoisySticky2(), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OutputReport.OK() {
		t.Fatalf("output failed: %s", report.OutputReport.Summary())
	}
	if n := report.Output.CountObjects("srsw-bit"); n != 0 {
		t.Errorf("output still has %d registers", n)
	}
	if n := report.Output.CountObjects("one-use-bit"); n != 0 {
		t.Errorf("output still has %d one-use bits", n)
	}
	for i := range report.Output.Objects {
		if got := report.Output.Objects[i].Spec.Name; got != "noisy-sticky" {
			t.Errorf("object %d has type %q, want noisy-sticky", i, got)
		}
	}
	// 2 registers x (1+1)x1 = 4 one-use bits, each one substrate copy
	// (one noisy-sticky object each), plus the election object.
	if report.OneUseBitsUsed != 4 {
		t.Errorf("one-use bits = %d, want 4", report.OneUseBitsUsed)
	}
	if len(report.Output.Objects) != 5 {
		t.Errorf("output objects = %d, want 5", len(report.Output.Objects))
	}
}

// TestVia53RejectsRegisterBearingSubstrate: the substrate must be
// register-free, or the transformation would smuggle registers back.
func TestVia53RejectsRegisterBearingSubstrate(t *testing.T) {
	input := consensus.NoisySticky2R()
	if _, err := EliminateRegistersVia53(input, consensus.TAS2(), explore.Options{}); !errors.Is(err, ErrUnsupportedRegister) {
		t.Fatalf("err = %v, want ErrUnsupportedRegister", err)
	}
}
