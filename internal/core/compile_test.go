package core

import (
	"fmt"
	"testing"

	"waitfree/internal/explore"
	"waitfree/internal/linearize"
	"waitfree/internal/multivalue"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// vidImpl builds a standalone 2-process implementation of a k-valued SRSW
// register over SRSW bits via the machine-level Vidyasankar compilation.
func vidImpl(t *testing.T, k, init int) *program.Implementation {
	t.Helper()
	base := &program.Implementation{
		Name:   "identity-srsw-register",
		Target: types.SRSWRegister(k),
		Procs:  2,
		Objects: []program.ObjectDecl{{
			Name: "reg", Spec: types.SRSWRegister(k), Init: init,
			PortOf: program.PairPorts(2, 0, 1),
		}},
		Machines: []program.Machine{forwardMachine(0), forwardMachine(0)},
	}
	out, err := CompileSRSWRegisters(base)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// forwardMachine forwards the target invocation to object obj and returns
// its response.
func forwardMachine(obj int) program.Machine {
	type st struct {
		PC   int
		Code int
	}
	return program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any {
			code := -1
			if inv.Op == types.OpWrite {
				code = inv.A
			}
			return st{PC: 0, Code: code}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(st)
			if s.PC == 0 {
				inv := types.Read
				if s.Code >= 0 {
					inv = types.Write(s.Code)
				}
				return program.InvokeAction(obj, inv), st{PC: 1, Code: s.Code}
			}
			return program.ReturnAction(resp, nil), s
		},
	}
}

// TestCompiledRegisterSequential checks read-your-writes through the
// compiled Vidyasankar machines.
func TestCompiledRegisterSequential(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		for init := 0; init < k; init++ {
			im := vidImpl(t, k, init)
			states := im.InitialStates()
			res, err := program.Solo(im, states, 0, types.Read, nil, 100)
			if err != nil {
				t.Fatal(err)
			}
			if res.Resp != types.ValOf(init) {
				t.Fatalf("k=%d: initial read = %v, want val(%d)", k, res.Resp, init)
			}
			for v := 0; v < k; v++ {
				if _, err := program.Solo(im, states, 1, types.Write(v), nil, 100); err != nil {
					t.Fatal(err)
				}
				res, err := program.Solo(im, states, 0, types.Read, nil, 100)
				if err != nil {
					t.Fatal(err)
				}
				if res.Resp != types.ValOf(v) {
					t.Fatalf("k=%d: read after write(%d) = %v", k, v, res.Resp)
				}
			}
		}
	}
}

// TestCompiledRegisterLinearizable explores all interleavings of reads and
// writes through the compiled machines and checks linearizability against
// the k-valued SRSW register.
func TestCompiledRegisterLinearizable(t *testing.T) {
	cases := []struct {
		k, init int
		writes  []int
		reads   int
	}{
		{3, 0, []int{2, 1}, 2},
		{4, 1, []int{3}, 2},
		{2, 0, []int{1, 0}, 2},
	}
	for _, tc := range cases {
		im := vidImpl(t, tc.k, tc.init)
		readScript := make([]types.Invocation, tc.reads)
		for i := range readScript {
			readScript[i] = types.Read
		}
		writeScript := make([]types.Invocation, len(tc.writes))
		for i, v := range tc.writes {
			writeScript[i] = types.Write(v)
		}
		opts := explore.Options{
			RecordHistory: true,
			OnLeaf: func(l *explore.Leaf) error {
				if _, err := linearize.Check(types.SRSWRegister(tc.k), tc.init, l.History); err != nil {
					return fmt.Errorf("not linearizable: %w\n%v", err, l.History)
				}
				return nil
			},
		}
		res, err := explore.Run(im, [][]types.Invocation{readScript, writeScript}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("k=%d writes=%v: %v", tc.k, tc.writes, res.Violation)
		}
	}
}

// TestMultiValuedEliminationEndToEnd is the grand composition: 4-valued
// 2-process consensus built over k-valued SRSW registers and binary
// consensus objects is reduced — registers to bits (Section 4.1 as
// machines), bits to one-use bits (Section 4.3), one-use bits to
// consensus-type objects (Section 5.2) — into an implementation whose
// objects are ALL of the binary consensus type, then verified over all 16
// proposal vectors.
func TestMultiValuedEliminationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("large exhaustive exploration")
	}
	input := multivalue.FromBinarySRSW(4)
	report, err := EliminateRegisters(input, explore.Options{Memoize: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OutputReport.OK() {
		t.Fatalf("output failed: %s", report.OutputReport.Summary())
	}
	if report.TypeName != "consensus" {
		t.Errorf("inferred type %q, want consensus", report.TypeName)
	}
	for i := range report.Output.Objects {
		if got := report.Output.Objects[i].Spec.Name; got != "consensus" {
			t.Errorf("object %d has type %q", i, got)
		}
	}
	// 2 registers of 5 values -> 10 bits; bounds then give the one-use
	// bit count; just pin the invariants rather than exact numbers.
	if report.RegistersEliminated != 10 {
		t.Errorf("registers eliminated = %d, want 10 (2 registers x 5 unary bits)", report.RegistersEliminated)
	}
	if report.OneUseBitsUsed <= report.RegistersEliminated {
		t.Errorf("one-use bits = %d, expected more than %d",
			report.OneUseBitsUsed, report.RegistersEliminated)
	}
	t.Logf("multi-valued elimination: %s", report.Summary())
}
