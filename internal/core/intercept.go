// Package core implements the constructive content of Theorem 5 of Bazzi,
// Neiger, and Peterson (PODC 1994): register elimination. Given a wait-free
// consensus implementation that uses objects of a non-trivial deterministic
// type T together with single-reader single-writer bit registers, the
// pipeline produces an implementation that uses objects of T only:
//
//  1. Bound (Section 4.2): explore the implementation's execution trees
//     and extract, for every register b, exact bounds r_b and w_b on how
//     often b is read and written along any execution.
//  2. RegistersToOneUseBits (Section 4.3): replace each register by an
//     (w_b+1) x r_b array of one-use bits, splicing the paper's read and
//     write routines into every process's program.
//  3. OneUseBitsToType (Sections 5.1/5.2): replace each one-use bit by a
//     single object of T, initialized at the witness state of a minimal
//     non-trivial pair, with reads running the pair's invocation sequence
//     and writes its single distinguishing invocation.
//
// EliminateRegisters composes the three steps and Verify model-checks the
// result, closing the loop on h_m^r(T) <= h_m(T).
package core

import (
	"fmt"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// MaxIntercepted bounds how many objects one transformation pass may
// intercept: their sub-machine memories live in a fixed-size comparable
// array inside each process's persistent memory.
const MaxIntercepted = 64

// route describes what happens to one object of the input implementation.
type route struct {
	// passthrough objects keep their declaration and are just re-indexed.
	passthrough bool
	newIdx      int
	// intercepted objects dispatch each operation name to a sub-machine
	// realizing it over the replacement objects.
	machines map[string]program.Machine
	memSlot  int
}

// interceptMem is a process's persistent memory after interception: the
// base machine's own memory plus one slot per intercepted object for the
// sub-machines' memories (for example the Section 4.3 row/column
// counters).
type interceptMem struct {
	Base any
	Subs [MaxIntercepted]any
}

// interceptState is the machine state of an intercepted process: the base
// machine's state, plus — while a sub-machine run is in flight — the sub
// state and which route it belongs to.
type interceptState struct {
	Base   any
	Sub    any
	SubObj int // input-object index being simulated; -1 if none
	SubOp  string
	Mems   [MaxIntercepted]any
}

// interceptor rewrites one process's machine so that accesses to
// intercepted objects run sub-machines instead.
type interceptor struct {
	base   program.Machine
	routes []route
}

var _ program.Machine = (*interceptor)(nil)

func (ic *interceptor) Start(inv types.Invocation, mem any) any {
	m, _ := mem.(interceptMem)
	return interceptState{
		Base:   ic.base.Start(inv, m.Base),
		SubObj: -1,
		Mems:   m.Subs,
	}
}

func (ic *interceptor) Next(state any, resp types.Response) (program.Action, any) {
	s, ok := state.(interceptState)
	if !ok {
		panic("core: interceptor driven with foreign state")
	}
	for {
		if s.SubObj >= 0 {
			r := ic.routes[s.SubObj]
			sub := r.machines[s.SubOp]
			act, next := sub.Next(s.Sub, resp)
			if act.Kind == program.KindInvoke {
				s.Sub = next
				return act, s
			}
			// Sub-machine finished: its response is the simulated
			// object's response, delivered to the base machine below.
			s.Mems[r.memSlot] = act.Mem
			s.Sub = nil
			s.SubObj = -1
			s.SubOp = ""
			resp = act.Resp
		}
		act, base := ic.base.Next(s.Base, resp)
		s.Base = base
		switch act.Kind {
		case program.KindReturn:
			return program.ReturnAction(act.Resp, interceptMem{Base: act.Mem, Subs: s.Mems}), s
		case program.KindInvoke:
			r := ic.routes[act.Obj]
			if r.passthrough {
				return program.InvokeAction(r.newIdx, act.Inv), s
			}
			sub, okOp := r.machines[act.Inv.Op]
			if !okOp {
				// The base machine used an operation the replacement does
				// not implement; surface it as an invalid object access.
				return program.InvokeAction(-1, act.Inv), s
			}
			s.SubObj = act.Obj
			s.SubOp = act.Inv.Op
			s.Sub = sub.Start(act.Inv, s.Mems[r.memSlot])
			resp = types.Response{}
		default:
			return act, s
		}
	}
}

// replaceObjects applies a transformation pass: every input object is
// either kept (passthrough) or replaced by new objects with per-operation
// sub-machines. selected maps input object index to its replacement plan;
// unselected objects are re-indexed automatically.
type replacement struct {
	// Decls are the objects realizing the replaced input object.
	Decls []program.ObjectDecl
	// MachinesFor returns the per-operation sub-machines for process p,
	// given the object index of the first replacement declaration.
	MachinesFor func(p, base int) map[string]program.Machine
}

func replaceObjects(im *program.Implementation, name string, selected map[int]replacement) (*program.Implementation, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	if len(selected) > MaxIntercepted {
		return nil, fmt.Errorf("core: %d objects to intercept, limit %d", len(selected), MaxIntercepted)
	}
	var decls []program.ObjectDecl
	routes := make([]route, len(im.Objects))
	bases := make(map[int]int, len(selected))
	memSlots := make(map[int]int, len(selected))
	nextSlot := 0
	for i := range im.Objects {
		if rep, ok := selected[i]; ok {
			bases[i] = len(decls)
			memSlots[i] = nextSlot
			nextSlot++
			decls = append(decls, rep.Decls...)
			continue
		}
		routes[i] = route{passthrough: true, newIdx: len(decls)}
		decls = append(decls, im.Objects[i])
	}
	machines := make([]program.Machine, im.Procs)
	for p := 0; p < im.Procs; p++ {
		procRoutes := make([]route, len(im.Objects))
		copy(procRoutes, routes)
		for i, rep := range selected {
			procRoutes[i] = route{
				machines: rep.MachinesFor(p, bases[i]),
				memSlot:  memSlots[i],
			}
		}
		machines[p] = &interceptor{base: im.Machines[p], routes: procRoutes}
	}
	out := &program.Implementation{
		Name:     name,
		Target:   im.Target,
		Procs:    im.Procs,
		Objects:  decls,
		Machines: machines,
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: transformed implementation invalid: %w", err)
	}
	return out, nil
}
