package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"waitfree/internal/explore"
	"waitfree/internal/hierarchy"
	"waitfree/internal/onebit"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// Errors reported by the pipeline.
var (
	// ErrNotWaitFree: the input failed verification, so no access bounds
	// exist (the Section 4.2 Koenig argument needs wait-freedom).
	ErrNotWaitFree = errors.New("core: input implementation is not a correct wait-free consensus implementation")
	// ErrUnsupportedRegister: the implementation uses a register type other
	// than the SRSW bit. Section 4.1 reduces all registers to SRSW bits;
	// express the input over types.SRSWBit (see package registers for the
	// executable chain).
	ErrUnsupportedRegister = errors.New("core: registers must be SRSW bits (reduce via the Section 4.1 chain)")
	// ErrNoTypeObjects: the implementation has no non-register objects, so
	// there is no type T to realize one-use bits from.
	ErrNoTypeObjects = errors.New("core: no non-register objects to infer the type T from")
	// ErrInconclusive: an exploration the pipeline depends on stopped with
	// partial coverage (soft node budget, deadline, or the stall watchdog)
	// before it could settle the property. Unlike ErrNotWaitFree this says
	// nothing about the input; the partial report — carrying a resumable
	// checkpoint — is returned alongside the error.
	ErrInconclusive = errors.New("core: exploration stopped with partial coverage; verdict inconclusive")
)

// registerSpecName matches the objects that step 2 eliminates.
const registerSpecName = "srsw-bit"

// oneUseSpecName matches the objects that step 3 eliminates.
const oneUseSpecName = "one-use-bit"

// targetValues returns the proposal-value range of the implementation's
// consensus target: 2 for the paper's binary T_{c,n}, or k for a
// multi-valued target.
func targetValues(im *program.Implementation) int {
	if im.Target != nil && im.Target.Name == "multi-consensus" {
		if k := len(im.Target.Alphabet); k >= 2 {
			return k
		}
	}
	return 2
}

// Bound runs the Section 4.2 analysis: it explores all execution trees of
// the consensus implementation and returns the report carrying the uniform
// depth bound D and the exact per-object, per-operation access bounds.
// The input must verify (agreement, validity, wait-freedom); otherwise
// ErrNotWaitFree. Multi-valued consensus targets are handled with k^n
// trees; opts.Parallelism fans them across workers without changing the
// report (see explore.ConsensusK).
func Bound(im *program.Implementation, opts explore.Options) (*explore.ConsensusReport, error) {
	return BoundContext(context.Background(), im, opts)
}

// BoundContext is Bound under a context: cancellation or deadline expiry
// aborts the exploration promptly and returns ctx.Err() (see
// explore.ConsensusKContext for the engine semantics, including
// Options.OnProgress observability).
func BoundContext(ctx context.Context, im *program.Implementation, opts explore.Options) (*explore.ConsensusReport, error) {
	report, err := explore.ConsensusKContext(ctx, im, targetValues(im), opts)
	if err != nil {
		// Pass any partial report through: a cancelled run's report carries
		// the resumable checkpoint.
		return report, err
	}
	if report.Partial {
		// Partial coverage proves nothing either way: distinguish "stopped
		// early" from "failed verification" so callers can resume instead
		// of condemning the input.
		return report, fmt.Errorf("%w: %s", ErrInconclusive, report.Summary())
	}
	if !report.OK() {
		return report, fmt.Errorf("%w: %s", ErrNotWaitFree, report.Summary())
	}
	return report, nil
}

// RegisterBound carries one register's Section 4.2 access bounds.
type RegisterBound struct {
	// Obj is the object index in the input implementation.
	Obj  int    `json:"obj"`
	Name string `json:"name"`
	// R and W are the read and write bounds (the paper's r_b and w_b).
	R    int `json:"r"`
	W    int `json:"w"`
	Init int `json:"init"`
}

// RegisterBounds extracts the SRSW-bit registers of im and their bounds
// from a Bound report. Registers that are never read or never written in
// any execution still get bounds of at least 1 so that the Section 4.3
// geometry is well-formed.
func RegisterBounds(im *program.Implementation, report *explore.ConsensusReport) ([]RegisterBound, error) {
	var out []RegisterBound
	for i := range im.Objects {
		decl := &im.Objects[i]
		if decl.Spec.Name != registerSpecName {
			if decl.Spec.Name == "register" || decl.Spec.Name == "bit" {
				return nil, fmt.Errorf("%w: object %d (%s) has type %q", ErrUnsupportedRegister, i, decl.Name, decl.Spec.Name)
			}
			continue
		}
		init, ok := decl.Init.(int)
		if !ok {
			return nil, fmt.Errorf("core: register %d (%s) has non-integer initial state %v", i, decl.Name, decl.Init)
		}
		rb := report.OpAccess[i][types.OpRead]
		wb := report.OpAccess[i][types.OpWrite]
		if rb == 0 {
			rb = 1
		}
		if wb == 0 {
			wb = 1
		}
		out = append(out, RegisterBound{Obj: i, Name: decl.Name, R: rb, W: wb, Init: init})
	}
	return out, nil
}

// registerParties returns the reader and writer process of an SRSW bit.
func registerParties(decl *program.ObjectDecl) (readerProc, writerProc int, err error) {
	readerProc, writerProc = -1, -1
	for p, port := range decl.PortOf {
		switch port {
		case types.SRSWBitReaderPort:
			readerProc = p
		case types.SRSWBitWriterPort:
			writerProc = p
		}
	}
	if readerProc < 0 || writerProc < 0 {
		return 0, 0, fmt.Errorf("core: register %s lacks a reader or writer process", decl.Name)
	}
	return readerProc, writerProc, nil
}

// RegistersToOneUseBits performs step 2 (Section 4.3): every SRSW-bit
// register becomes an (w_b+1) x r_b array of one-use bits, and the paper's
// read and write routines are spliced into the affected processes.
func RegistersToOneUseBits(im *program.Implementation, bounds []RegisterBound) (*program.Implementation, error) {
	selected := make(map[int]replacement, len(bounds))
	for _, b := range bounds {
		decl := &im.Objects[b.Obj]
		readerProc, writerProc, err := registerParties(decl)
		if err != nil {
			return nil, err
		}
		array := onebit.Array{R: b.R, W: b.W, Init: b.Init} // Base set per process below
		selected[b.Obj] = replacement{
			Decls: array.Decls(im.Procs, readerProc, writerProc),
			MachinesFor: func(p, base int) map[string]program.Machine {
				a := array
				a.Base = base
				switch p {
				case readerProc:
					return map[string]program.Machine{types.OpRead: onebit.ReaderMachine(a)}
				case writerProc:
					return map[string]program.Machine{types.OpWrite: onebit.WriterMachine(a)}
				default:
					return nil // process never touches this register
				}
			},
		}
	}
	return replaceObjects(im, im.Name+"+onebits", selected)
}

// OneUseBitsToType performs step 3 (Sections 5.1/5.2): every one-use bit
// becomes a single object of the non-trivial deterministic type spec,
// initialized at the witness pair's start state, with reads running the
// pair's sequence and writes its distinguishing invocation.
func OneUseBitsToType(im *program.Implementation, spec *types.Spec, pair *hierarchy.Pair) (*program.Implementation, error) {
	selected := make(map[int]replacement)
	for i := range im.Objects {
		decl := &im.Objects[i]
		if decl.Spec.Name != oneUseSpecName {
			continue
		}
		readerProc, writerProc := -1, -1
		for p, port := range decl.PortOf {
			switch port {
			case 1:
				readerProc = p
			case 2:
				writerProc = p
			}
		}
		if readerProc < 0 || writerProc < 0 {
			return nil, fmt.Errorf("core: one-use bit %s lacks a reader or writer process", decl.Name)
		}
		selected[i] = replacement{
			Decls: []program.ObjectDecl{onebit.PairDecl(spec, pair, im.Procs, readerProc, writerProc)},
			MachinesFor: func(p, base int) map[string]program.Machine {
				switch p {
				case readerProc:
					return map[string]program.Machine{types.OpRead: onebit.PairReaderMachine(pair, base)}
				case writerProc:
					return map[string]program.Machine{types.OpWrite: onebit.PairWriterMachine(pair, base)}
				default:
					return nil
				}
			},
		}
	}
	return replaceObjects(im, im.Name+"+type", selected)
}

// InferType returns the unique non-register, non-one-use-bit object type
// of the implementation together with the initial states its objects use —
// the T whose objects will realize the one-use bits.
func InferType(im *program.Implementation) (*types.Spec, []types.State, error) {
	var spec *types.Spec
	var inits []types.State
	for i := range im.Objects {
		decl := &im.Objects[i]
		if decl.Spec.Name == registerSpecName || decl.Spec.Name == oneUseSpecName ||
			decl.Spec.Name == srswRegisterSpecName {
			continue
		}
		if spec == nil {
			spec = decl.Spec
		} else if spec.Name != decl.Spec.Name {
			return nil, nil, fmt.Errorf("core: multiple candidate types (%q and %q); pass T explicitly",
				spec.Name, decl.Spec.Name)
		}
		inits = append(inits, decl.Init)
	}
	if spec == nil {
		return nil, nil, ErrNoTypeObjects
	}
	return spec, inits, nil
}

// Report is the full record of one register-elimination run, the data
// behind Experiments E6 and E7. The runnable implementations themselves
// are excluded from the JSON form (machines are code); InputName and
// OutputName identify them instead.
type Report struct {
	Input  *program.Implementation `json:"-"`
	Output *program.Implementation `json:"-"`

	InputName  string `json:"input"`
	OutputName string `json:"output"`

	// InputReport is the Section 4.2 analysis of the input (D, bounds).
	InputReport *explore.ConsensusReport `json:"input_report"`
	// OutputReport verifies the output (agreement, validity, wait-free).
	OutputReport *explore.ConsensusReport `json:"output_report"`

	Bounds []RegisterBound `json:"bounds"`
	// Pair is the Section 5.2 witness used to realize one-use bits (nil on
	// the Section 5.3 route).
	Pair *hierarchy.Pair `json:"pair,omitempty"`
	// TypeName is the name of the type T realizing the one-use bits.
	TypeName string `json:"type"`

	// Accounting.
	RegistersEliminated int `json:"registers_eliminated"`
	OneUseBitsUsed      int `json:"one_use_bits"`
	TypeObjectsAdded    int `json:"type_objects_added"`
}

// Summary renders the report's headline numbers.
func (r *Report) Summary() string {
	return fmt.Sprintf("%s: D=%d, %d registers -> %d one-use bits -> %d %s objects; output D=%d, ok=%v",
		r.InputName, r.InputReport.Depth, r.RegistersEliminated, r.OneUseBitsUsed,
		r.TypeObjectsAdded, r.TypeName, r.OutputReport.Depth, r.OutputReport.OK())
}

// String renders the full human-readable report — the single source of
// truth behind cmd/eliminate's output: the Section 4.2 bounds, the
// witness (or substrate) realizing one-use bits, the accounting, and the
// output verification.
func (r *Report) String() string {
	var b strings.Builder
	if r.Output != nil {
		fmt.Fprintf(&b, "output: %v\n\n", r.Output)
	} else {
		// Reports rehydrated from JSON (the result cache) carry only the
		// marshaled fields; Input/Output are json:"-".
		fmt.Fprintf(&b, "output: %s\n\n", r.OutputName)
	}
	b.WriteString("Section 4.2 access bounds of the input:\n")
	fmt.Fprintf(&b, "  uniform bound D = %d object accesses per execution\n", r.InputReport.Depth)
	for _, bd := range r.Bounds {
		fmt.Fprintf(&b, "  register %-10s r_b = %d, w_b = %d  ->  (w+1) x r = %d one-use bits\n",
			bd.Name, bd.R, bd.W, (bd.W+1)*bd.R)
	}
	if r.Pair != nil {
		fmt.Fprintf(&b, "\nSection 5.2 witness realizing one-use bits from %s:\n  %v\n", r.TypeName, r.Pair)
	} else {
		fmt.Fprintf(&b, "\nSection 5.3 route: one-use bits realized from the register-free %s consensus substrate\n", r.TypeName)
	}
	b.WriteString("\naccounting:\n")
	fmt.Fprintf(&b, "  registers eliminated:   %d\n", r.RegistersEliminated)
	fmt.Fprintf(&b, "  one-use bits introduced: %d\n", r.OneUseBitsUsed)
	fmt.Fprintf(&b, "  %s objects added:  %d\n", r.TypeName, r.TypeObjectsAdded)
	b.WriteString("\nverification of the register-free output:\n")
	fmt.Fprintf(&b, "  %s\n", r.OutputReport.Summary())
	return b.String()
}

// EliminateRegisters runs the full Theorem 5 pipeline on a consensus
// implementation over SRSW-bit registers and objects of one non-trivial
// deterministic type, verifying both endpoints. opts configures both
// explorations (Memoize is recommended for larger protocols, and
// opts.Parallelism spreads each verification's proposal-vector trees
// across workers). maxK bounds the Section 5.2 witness search.
func EliminateRegisters(im *program.Implementation, opts explore.Options, maxK int) (*Report, error) {
	return EliminateRegistersContext(context.Background(), im, opts, maxK)
}

// EliminateRegistersContext is EliminateRegisters under a context: both
// endpoint verifications honor ctx cancellation/deadlines and publish
// engine progress via opts.OnProgress.
func EliminateRegistersContext(ctx context.Context, im *program.Implementation, opts explore.Options, maxK int) (*Report, error) {
	// Section 4.1 at the machine level: multi-valued SRSW registers are
	// first compiled into SRSW bits (a no-op if there are none).
	compiled, err := CompileSRSWRegisters(im)
	if err != nil {
		return nil, err
	}
	inputReport, err := BoundContext(ctx, compiled, opts)
	if err != nil {
		return nil, err
	}
	bounds, err := RegisterBounds(compiled, inputReport)
	if err != nil {
		return nil, err
	}
	spec, inits, err := InferType(compiled)
	if err != nil {
		return nil, err
	}
	pair, err := hierarchy.FindPair(spec, inits, maxK)
	if err != nil {
		return nil, fmt.Errorf("core: type %q cannot realize one-use bits: %w", spec.Name, err)
	}

	step1, err := RegistersToOneUseBits(compiled, bounds)
	if err != nil {
		return nil, err
	}
	out, err := OneUseBitsToType(step1, spec, pair)
	if err != nil {
		return nil, err
	}
	outputReport, err := explore.ConsensusKContext(ctx, out, targetValues(im), opts)
	if err != nil {
		return nil, err
	}

	report := &Report{
		Input:               im,
		Output:              out,
		InputName:           im.Name,
		OutputName:          out.Name,
		InputReport:         inputReport,
		OutputReport:        outputReport,
		Bounds:              bounds,
		Pair:                pair,
		TypeName:            spec.Name,
		RegistersEliminated: len(bounds),
		OneUseBitsUsed:      step1.CountObjects(oneUseSpecName),
		TypeObjectsAdded:    out.CountObjects(spec.Name) - im.CountObjects(spec.Name),
	}
	if outputReport.Partial {
		return report, fmt.Errorf("%w: transformed implementation: %s", ErrInconclusive, outputReport.Summary())
	}
	if !outputReport.OK() {
		return report, fmt.Errorf("core: transformed implementation failed verification: %s", outputReport.Summary())
	}
	return report, nil
}
