package core

import (
	"fmt"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file runs the Section 4.1 register reduction at the machine level:
// every single-reader single-writer k-valued register is compiled into k
// SRSW bits using Vidyasankar's construction (set bit v, clear downward;
// read by upscan to the first set bit then a confirming downscan). After
// compilation the implementation's registers are all SRSW bits, the only
// register form the Theorem 5 pipeline consumes.

const srswRegisterSpecName = "srsw-register"

// vidWriteState drives the write routine: set bits[v], then clear
// bits[v-1] .. bits[0].
type vidWriteState struct {
	V    int
	Next int // next bit index to touch; -1 when done
	Set  bool
}

// vidWriterMachine implements write(v) over k SRSW bits at indices
// base..base+k-1.
func vidWriterMachine(base, k int) program.Machine {
	return program.FuncMachine{
		StartFn: func(inv types.Invocation, mem any) any {
			_ = mem
			return vidWriteState{V: inv.A, Next: inv.A}
		},
		NextFn: func(state any, _ types.Response) (program.Action, any) {
			s, ok := state.(vidWriteState)
			if !ok {
				panic("core: vidWriterMachine driven with foreign state")
			}
			if !s.Set {
				return program.InvokeAction(base+s.V, types.Write(1)),
					vidWriteState{V: s.V, Next: s.V - 1, Set: true}
			}
			if s.Next < 0 {
				return program.ReturnAction(types.OK, nil), s
			}
			return program.InvokeAction(base+s.Next, types.Write(0)),
				vidWriteState{V: s.V, Next: s.Next - 1, Set: true}
		},
	}
}

// vidReadState drives the read routine: upscan for the first set bit over
// bits[0..k-2] (an all-zero upscan implies the value k-1 without reading
// the top bit), then downscan from the candidate's predecessor to bit 0,
// adopting the lowest set bit seen. J is the index of the bit whose
// response the machine is receiving; -1 before the first read.
type vidReadState struct {
	Phase int // 0 = upscan, 1 = downscan
	J     int
	V     int // candidate value
}

// vidReaderMachine implements read over k SRSW bits at indices
// base..base+k-1 (k >= 2).
func vidReaderMachine(base, k int) program.Machine {
	return program.FuncMachine{
		StartFn: func(_ types.Invocation, mem any) any {
			_ = mem
			return vidReadState{J: -1}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s, ok := state.(vidReadState)
			if !ok {
				panic("core: vidReaderMachine driven with foreign state")
			}
			if s.Phase == 0 {
				if s.J == -1 {
					return program.InvokeAction(base, types.Read), vidReadState{J: 0}
				}
				v := -1
				switch {
				case resp.Val == 1:
					v = s.J // first set bit found
				case s.J == k-2:
					v = k - 1 // upscan exhausted: the value is the top index
				}
				if v == -1 {
					return program.InvokeAction(base+s.J+1, types.Read),
						vidReadState{Phase: 0, J: s.J + 1}
				}
				if v == 0 {
					return program.ReturnAction(types.ValOf(0), nil), s
				}
				return program.InvokeAction(base+v-1, types.Read),
					vidReadState{Phase: 1, J: v - 1, V: v}
			}
			// Downscan: resp answers bits[J].
			if resp.Val == 1 {
				s.V = s.J
			}
			if s.J == 0 {
				return program.ReturnAction(types.ValOf(s.V), nil), s
			}
			return program.InvokeAction(base+s.J-1, types.Read),
				vidReadState{Phase: 1, J: s.J - 1, V: s.V}
		},
	}
}

// CompileSRSWRegisters replaces every k-valued SRSW register with k SRSW
// bits in unary (Vidyasankar) encoding, splicing the read and write
// routines into the affected processes. Register objects with non-integer
// initial states are rejected.
func CompileSRSWRegisters(im *program.Implementation) (*program.Implementation, error) {
	selected := make(map[int]replacement)
	for i := range im.Objects {
		decl := &im.Objects[i]
		if decl.Spec.Name != srswRegisterSpecName {
			continue
		}
		k := registerValues(decl.Spec)
		if k < 2 {
			return nil, fmt.Errorf("core: register %s has unusable value range %d", decl.Name, k)
		}
		init, ok := decl.Init.(int)
		if !ok || init < 0 || init >= k {
			return nil, fmt.Errorf("core: register %s has invalid initial state %v", decl.Name, decl.Init)
		}
		readerProc, writerProc, err := registerParties(decl)
		if err != nil {
			return nil, err
		}
		procs := im.Procs
		kk := k
		selected[i] = replacement{
			Decls: vidDecls(decl.Name, procs, readerProc, writerProc, kk, init),
			MachinesFor: func(p, base int) map[string]program.Machine {
				switch p {
				case readerProc:
					return map[string]program.Machine{types.OpRead: vidReaderMachine(base, kk)}
				case writerProc:
					return map[string]program.Machine{types.OpWrite: vidWriterMachine(base, kk)}
				default:
					return nil
				}
			},
		}
	}
	if len(selected) == 0 {
		return im, nil
	}
	return replaceObjects(im, im.Name+"+bits", selected)
}

// registerValues recovers k from the register spec's write alphabet.
func registerValues(spec *types.Spec) int {
	k := 0
	for _, inv := range spec.Alphabet {
		if inv.Op == types.OpWrite && inv.A+1 > k {
			k = inv.A + 1
		}
	}
	return k
}

// vidDecls declares the k SRSW bits encoding one register: bit init is 1
// exactly at the register's initial value.
func vidDecls(name string, procs, readerProc, writerProc, k, init int) []program.ObjectDecl {
	decls := make([]program.ObjectDecl, k)
	for j := range decls {
		b := 0
		if j == init {
			b = 1
		}
		decls[j] = program.ObjectDecl{
			Name:   fmt.Sprintf("%s.bit%d", name, j),
			Spec:   types.SRSWBit(),
			Init:   b,
			PortOf: program.PairPorts(procs, readerProc, writerProc),
		}
	}
	return decls
}
