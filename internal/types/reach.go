package types

import (
	"errors"
	"fmt"
)

// ErrStateSpaceTooLarge reports that a bounded state-space analysis hit its
// state budget before converging. Callers must treat the analysis result as
// unknown rather than as a verdict.
var ErrStateSpaceTooLarge = errors.New("types: state space exceeds analysis budget")

// Reachable returns the set of states reachable from init via legal
// invocations from the spec's Alphabet on any port, including init itself.
// Exploration stops with ErrStateSpaceTooLarge once more than limit states
// are discovered. The result order is breadth-first and deterministic for
// deterministic alphabets.
func Reachable(spec *Spec, init State, limit int) ([]State, error) {
	seen := map[State]bool{init: true}
	order := []State{init}
	frontier := []State{init}
	for len(frontier) > 0 {
		var next []State
		for _, q := range frontier {
			for port := 1; port <= spec.Ports; port++ {
				for _, inv := range spec.Alphabet {
					for _, t := range spec.Step(q, port, inv) {
						if seen[t.Next] {
							continue
						}
						if len(order) >= limit {
							return order, fmt.Errorf("%w: from %v (limit %d)", ErrStateSpaceTooLarge, init, limit)
						}
						seen[t.Next] = true
						order = append(order, t.Next)
						next = append(next, t.Next)
					}
				}
			}
		}
		frontier = next
	}
	return order, nil
}

// CheckDeterministic verifies that every legal alphabet invocation from
// every state reachable from init has exactly one allowed transition. It
// returns nil if the (bounded) reachable fragment is deterministic.
func CheckDeterministic(spec *Spec, init State, limit int) error {
	// A truncated reachable set is still scanned: a branch found within it
	// is a definite verdict, reported in preference to ErrStateSpaceTooLarge.
	states, err := Reachable(spec, init, limit)
	if err != nil && !errors.Is(err, ErrStateSpaceTooLarge) {
		return err
	}
	for _, q := range states {
		for port := 1; port <= spec.Ports; port++ {
			for _, inv := range spec.Alphabet {
				ts := spec.Step(q, port, inv)
				if len(ts) > 1 {
					return fmt.Errorf("types: %q is nondeterministic at state %v, port %d, %v (%d outcomes)",
						spec.Name, q, port, inv, len(ts))
				}
			}
		}
	}
	return err
}

// CheckOblivious verifies that identical invocations on different ports
// have identical transition sets from every state reachable from init
// (the paper's obliviousness condition). Transition sets are compared as
// multisets.
func CheckOblivious(spec *Spec, init State, limit int) error {
	// As in CheckDeterministic, port-dependence found within a truncated
	// reachable set is a definite verdict and outranks exhaustion.
	states, err := Reachable(spec, init, limit)
	if err != nil && !errors.Is(err, ErrStateSpaceTooLarge) {
		return err
	}
	for _, q := range states {
		for _, inv := range spec.Alphabet {
			base := transitionBag(spec.Step(q, 1, inv))
			for port := 2; port <= spec.Ports; port++ {
				other := transitionBag(spec.Step(q, port, inv))
				if !bagsEqual(base, other) {
					return fmt.Errorf("types: %q is port-aware at state %v for %v (port 1 vs port %d)",
						spec.Name, q, inv, port)
				}
			}
		}
	}
	return err
}

func transitionBag(ts []Transition) map[Transition]int {
	bag := make(map[Transition]int, len(ts))
	for _, t := range ts {
		bag[t]++
	}
	return bag
}

func bagsEqual(a, b map[Transition]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}
