package types

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestInvString(t *testing.T) {
	tests := []struct {
		inv  Invocation
		want string
	}{
		{Inv("read"), "read"},
		{Inv("write", 3), "write(3)"},
		{Inv("cas", 1, 2), "cas(1,2)"},
		{Inv("faa", 0), "faa"}, // zero args print compactly
	}
	for _, tt := range tests {
		if got := tt.inv.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.inv, got, tt.want)
		}
	}
}

func TestInvTooManyArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv with three args did not panic")
		}
	}()
	Inv("bad", 1, 2, 3)
}

func TestResponseString(t *testing.T) {
	if got := ValOf(7).String(); got != "val(7)" {
		t.Errorf("ValOf(7).String() = %q", got)
	}
	if got := OK.String(); got != "ok" {
		t.Errorf("OK.String() = %q", got)
	}
	if got := (Response{Label: LabelWin}).String(); got != "win" {
		t.Errorf("win String() = %q", got)
	}
}

func TestRegisterTransitions(t *testing.T) {
	reg := Register(3, 4)
	next, resp, err := reg.DetApply(0, 1, Write(3))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if next != 3 || resp != OK {
		t.Fatalf("write(3) from 0: got (%v, %v)", next, resp)
	}
	next, resp, err = reg.DetApply(3, 2, Read)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if next != 3 || resp != ValOf(3) {
		t.Fatalf("read from 3: got (%v, %v)", next, resp)
	}
	if _, _, err := reg.DetApply(0, 1, Write(9)); !errors.Is(err, ErrIllegal) {
		t.Errorf("out-of-range write: err = %v, want ErrIllegal", err)
	}
	if _, _, err := reg.DetApply(0, 4, Read); !errors.Is(err, ErrBadPort) {
		t.Errorf("bad port: err = %v, want ErrBadPort", err)
	}
}

func TestRegisterReadYourWrite(t *testing.T) {
	reg := Register(2, 10)
	f := func(v uint8) bool {
		val := int(v % 10)
		next, _, err := reg.DetApply(0, 1, Write(val))
		if err != nil {
			return false
		}
		_, resp, err := reg.DetApply(next, 2, Read)
		return err == nil && resp == ValOf(val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRSWBitPortDiscipline(t *testing.T) {
	bit := SRSWBit()
	if _, _, err := bit.DetApply(0, SRSWBitWriterPort, Read); !errors.Is(err, ErrIllegal) {
		t.Errorf("read on writer port: err = %v, want ErrIllegal", err)
	}
	if _, _, err := bit.DetApply(0, SRSWBitReaderPort, Write(1)); !errors.Is(err, ErrIllegal) {
		t.Errorf("write on reader port: err = %v, want ErrIllegal", err)
	}
	next, _, err := bit.DetApply(0, SRSWBitWriterPort, Write(1))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	_, resp, err := bit.DetApply(next, SRSWBitReaderPort, Read)
	if err != nil || resp != ValOf(1) {
		t.Fatalf("read after write: resp=%v err=%v", resp, err)
	}
}

func TestTestAndSet(t *testing.T) {
	tas := TestAndSet(2)
	next, resp, err := tas.DetApply(0, 1, TAS)
	if err != nil || next != 1 || resp != ValOf(0) {
		t.Fatalf("first tas: (%v, %v, %v)", next, resp, err)
	}
	next, resp, err = tas.DetApply(next, 2, TAS)
	if err != nil || next != 1 || resp != ValOf(1) {
		t.Fatalf("second tas: (%v, %v, %v)", next, resp, err)
	}
}

func TestSwap(t *testing.T) {
	sw := Swap(2, 3)
	next, resp, err := sw.DetApply(1, 1, Inv(OpSwap, 2))
	if err != nil || next != 2 || resp != ValOf(1) {
		t.Fatalf("swap(2) from 1: (%v, %v, %v)", next, resp, err)
	}
}

func TestFetchAdd(t *testing.T) {
	faa := FetchAdd(2)
	q := State(0)
	for i := 0; i < 5; i++ {
		next, resp, err := faa.DetApply(q, 1, Inv(OpFAA, 1))
		if err != nil {
			t.Fatal(err)
		}
		if resp != ValOf(i) {
			t.Fatalf("faa #%d returned %v", i, resp)
		}
		q = next
	}
	_, resp, err := faa.DetApply(q, 2, Inv(OpFAA, 0))
	if err != nil || resp != ValOf(5) {
		t.Fatalf("faa(0): (%v, %v)", resp, err)
	}
}

func TestCompareSwap(t *testing.T) {
	cas := CompareSwap(3, 3)
	next, resp, err := cas.DetApply(0, 1, Inv(OpCAS, 0, 2))
	if err != nil || next != 2 || resp != (Response{Label: CASOld, Val: 0}) {
		t.Fatalf("successful cas: (%v, %v, %v)", next, resp, err)
	}
	next, resp, err = cas.DetApply(next, 2, Inv(OpCAS, 0, 1))
	if err != nil || next != 2 || resp != (Response{Label: CASOld, Val: 2}) {
		t.Fatalf("failed cas: (%v, %v, %v)", next, resp, err)
	}
}

func TestStickyCell(t *testing.T) {
	sc := StickyCell(3, 2)
	next, _, err := sc.DetApply(StickyUnset, 1, Inv(OpStick, 1))
	if err != nil || next != 1 {
		t.Fatalf("first stick: (%v, %v)", next, err)
	}
	next, _, err = sc.DetApply(next, 2, Inv(OpStick, 0))
	if err != nil || next != 1 {
		t.Fatalf("second stick must not change value: (%v, %v)", next, err)
	}
	_, resp, err := sc.DetApply(next, 3, Read)
	if err != nil || resp != ValOf(1) {
		t.Fatalf("read: (%v, %v)", resp, err)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := Queue(2, 3, 4)
	st := QueueState()
	for _, v := range []int{2, 0, 1} {
		next, resp, err := q.DetApply(st, 1, Enq(v))
		if err != nil || resp != OK {
			t.Fatalf("enq(%d): (%v, %v)", v, resp, err)
		}
		st = next
	}
	for _, want := range []int{2, 0, 1} {
		next, resp, err := q.DetApply(st, 2, Deq)
		if err != nil || resp != ValOf(want) {
			t.Fatalf("deq: got %v want val(%d) (err %v)", resp, want, err)
		}
		st = next
	}
	_, resp, err := q.DetApply(st, 2, Deq)
	if err != nil || resp.Label != LabelEmpty {
		t.Fatalf("deq on empty: (%v, %v)", resp, err)
	}
}

func TestQueueCapacity(t *testing.T) {
	q := Queue(2, 2, 2)
	st := QueueState(0, 1)
	_, resp, err := q.DetApply(st, 1, Enq(0))
	if err != nil || resp.Label != LabelFull {
		t.Fatalf("enq at capacity: (%v, %v)", resp, err)
	}
}

func TestStackLIFO(t *testing.T) {
	s := Stack(2, 3, 4)
	st := QueueState()
	for _, v := range []int{2, 0, 1} {
		next, _, err := s.DetApply(st, 1, Push(v))
		if err != nil {
			t.Fatal(err)
		}
		st = next
	}
	for _, want := range []int{1, 0, 2} {
		next, resp, err := s.DetApply(st, 2, Pop)
		if err != nil || resp != ValOf(want) {
			t.Fatalf("pop: got %v want val(%d) (err %v)", resp, want, err)
		}
		st = next
	}
}

func TestConsensusType(t *testing.T) {
	c := Consensus(3)
	next, resp, err := c.DetApply(ConsensusUndecided, 1, Propose(1))
	if err != nil || next != 1 || resp != ValOf(1) {
		t.Fatalf("first propose: (%v, %v, %v)", next, resp, err)
	}
	// All later proposals, on any port and with any value, return the
	// consensus value.
	for port := 1; port <= 3; port++ {
		for v := 0; v <= 1; v++ {
			n2, r2, err := c.DetApply(next, port, Propose(v))
			if err != nil || n2 != 1 || r2 != ValOf(1) {
				t.Fatalf("propose(%d)@%d after decide: (%v, %v, %v)", v, port, n2, r2, err)
			}
		}
	}
}

func TestOneUseBitMatchesPaperTable(t *testing.T) {
	b := OneUseBit()
	tests := []struct {
		state string
		inv   Invocation
		want  []Transition
	}{
		{OneUseUnset, Read, []Transition{{Next: OneUseDead, Resp: ValOf(0)}}},
		{OneUseSet, Read, []Transition{{Next: OneUseDead, Resp: ValOf(1)}}},
		{OneUseDead, Read, []Transition{
			{Next: OneUseDead, Resp: ValOf(0)},
			{Next: OneUseDead, Resp: ValOf(1)},
		}},
		{OneUseUnset, Write(1), []Transition{{Next: OneUseSet, Resp: OK}}},
		{OneUseSet, Write(1), []Transition{{Next: OneUseDead, Resp: OK}}},
		{OneUseDead, Write(1), []Transition{{Next: OneUseDead, Resp: OK}}},
	}
	for _, tt := range tests {
		got, err := b.Apply(tt.state, 1, tt.inv)
		if err != nil {
			t.Fatalf("%s/%v: %v", tt.state, tt.inv, err)
		}
		if len(got) != len(tt.want) {
			t.Fatalf("%s/%v: %d transitions, want %d", tt.state, tt.inv, len(got), len(tt.want))
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%s/%v[%d] = %+v, want %+v", tt.state, tt.inv, i, got[i], tt.want[i])
			}
		}
	}
}

func TestWeakLeaderExactlyOneWinner(t *testing.T) {
	wl := WeakLeader(2)
	// Enumerate both nondeterministic resolutions of the first access and
	// check that among the first two accesses there is exactly one win.
	first, err := wl.Apply(weakFresh, 1, TAS)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 {
		t.Fatalf("first access has %d outcomes, want 2", len(first))
	}
	for _, t1 := range first {
		second, err := wl.Apply(t1.Next, 2, TAS)
		if err != nil {
			t.Fatal(err)
		}
		if len(second) != 1 {
			t.Fatalf("second access has %d outcomes, want 1", len(second))
		}
		wins := 0
		if t1.Resp.Label == LabelWin {
			wins++
		}
		if second[0].Resp.Label == LabelWin {
			wins++
		}
		if wins != 1 {
			t.Errorf("resolution %v/%v: %d winners, want exactly 1", t1.Resp, second[0].Resp, wins)
		}
		// Third access always loses.
		third, err := wl.Apply(second[0].Next, 1, TAS)
		if err != nil {
			t.Fatal(err)
		}
		if third[0].Resp.Label != LabelLose {
			t.Errorf("third access = %v, want lose", third[0].Resp)
		}
	}
}

func TestLatchFlagBehavior(t *testing.T) {
	lf := LatchFlag()
	// H1 = probe; probe from the zero state returns 0, 0.
	h1, _, err := Run(lf, LatchFlagInit(), []struct {
		Port int
		Inv  Invocation
	}{{1, Inv(OpProbe)}, {1, Inv(OpProbe)}})
	if err != nil {
		t.Fatal(err)
	}
	if h1[1].Resp != ValOf(0) {
		t.Fatalf("H1 return value = %v, want val(0)", h1[1].Resp)
	}
	// H2 = set; probe; probe returns ok, 0, 1 — the last response differs.
	h2, _, err := Run(lf, LatchFlagInit(), []struct {
		Port int
		Inv  Invocation
	}{{2, Inv(OpSet)}, {1, Inv(OpProbe)}, {1, Inv(OpProbe)}})
	if err != nil {
		t.Fatal(err)
	}
	if h2[2].Resp != ValOf(1) {
		t.Fatalf("H2 return value = %v, want val(1)", h2[2].Resp)
	}
	// A single probe cannot distinguish: it answers 0 regardless of set.
	if h2[1].Resp != ValOf(0) {
		t.Fatalf("first probe after set = %v, want val(0)", h2[1].Resp)
	}
}

func TestReachableRegister(t *testing.T) {
	reg := Register(2, 3)
	states, err := Reachable(reg, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("reachable register states = %d, want 3 (%s)", len(states), FormatStates(states))
	}
}

func TestReachableLimit(t *testing.T) {
	faa := FetchAdd(2)
	_, err := Reachable(faa, 0, 10)
	if !errors.Is(err, ErrStateSpaceTooLarge) {
		t.Fatalf("unbounded counter: err = %v, want ErrStateSpaceTooLarge", err)
	}
}

func TestCheckDeterministic(t *testing.T) {
	if err := CheckDeterministic(Register(2, 4), 0, 100); err != nil {
		t.Errorf("register: %v", err)
	}
	if err := CheckDeterministic(Queue(2, 2, 3), QueueState(), 100); err != nil {
		t.Errorf("queue: %v", err)
	}
	if err := CheckDeterministic(OneUseBit(), OneUseUnset, 100); err == nil {
		t.Error("one-use bit reported deterministic; its DEAD reads branch")
	}
	if err := CheckDeterministic(WeakLeader(2), weakFresh, 100); err == nil {
		t.Error("weak-leader reported deterministic")
	}
}

func TestCheckOblivious(t *testing.T) {
	for _, spec := range []*Spec{Register(3, 3), TestAndSet(3), Queue(3, 2, 3), OneUseBit(), WeakLeader(3)} {
		var init State
		switch spec.Name {
		case "queue":
			init = QueueState()
		case "one-use-bit":
			init = OneUseUnset
		default:
			init = 0
		}
		if spec.Name == "sticky-cell" {
			init = StickyUnset
		}
		if err := CheckOblivious(spec, init, 200); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	if err := CheckOblivious(SRSWBit(), 0, 100); err == nil {
		t.Error("srsw-bit reported oblivious; its ports differ")
	}
	if err := CheckOblivious(LatchFlag(), LatchFlagInit(), 100); err == nil {
		t.Error("latch-flag reported oblivious; its ports differ")
	}
}

func TestSeqHistoryValidate(t *testing.T) {
	tas := TestAndSet(2)
	h := SeqHistory{
		{Port: 1, Inv: TAS, Resp: ValOf(0)},
		{Port: 2, Inv: TAS, Resp: ValOf(1)},
	}
	final, err := h.Validate(tas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final != 1 {
		t.Fatalf("final state = %v, want 1", final)
	}
	bad := SeqHistory{
		{Port: 1, Inv: TAS, Resp: ValOf(1)}, // first tas must return 0
	}
	if _, err := bad.Validate(tas, 0); err == nil {
		t.Error("invalid history accepted")
	}
}

func TestSeqHistoryValidateNondeterministic(t *testing.T) {
	b := OneUseBit()
	// DEAD reads may return either value; both must validate.
	for _, v := range []int{0, 1} {
		h := SeqHistory{
			{Port: 1, Inv: Read, Resp: ValOf(0)},
			{Port: 1, Inv: Read, Resp: ValOf(v)},
		}
		if _, err := h.Validate(b, OneUseUnset); err != nil {
			t.Errorf("dead read returning %d rejected: %v", v, err)
		}
	}
}

func TestSeqHistoryString(t *testing.T) {
	h := SeqHistory{{Port: 1, Inv: Read, Resp: ValOf(0)}}
	if got := h.String(); !strings.Contains(got, "p1:read->val(0)") {
		t.Errorf("String() = %q", got)
	}
}

func TestReturnValue(t *testing.T) {
	h := SeqHistory{
		{Port: 2, Inv: Inv(OpSet), Resp: OK},
		{Port: 1, Inv: Inv(OpProbe), Resp: ValOf(0)},
		{Port: 1, Inv: Inv(OpProbe), Resp: ValOf(1)},
	}
	r, ok := h.ReturnValue(1)
	if !ok || r != ValOf(1) {
		t.Fatalf("ReturnValue(1) = %v, %v", r, ok)
	}
	r, ok = h.ReturnValue(2)
	if !ok || r != OK {
		t.Fatalf("ReturnValue(2) = %v, %v", r, ok)
	}
	if _, ok := h.ReturnValue(3); ok {
		t.Error("ReturnValue(3) found an event on an unused port")
	}
}

// Property: a queue is a faithful FIFO against a reference slice model for
// arbitrary operation sequences.
func TestQueueAgainstModel(t *testing.T) {
	spec := Queue(2, 4, 8)
	f := func(ops []uint8) bool {
		st := QueueState()
		var model []int
		for _, op := range ops {
			if op%5 == 0 { // deq
				next, resp, err := spec.DetApply(st, 1, Deq)
				if err != nil {
					return false
				}
				if len(model) == 0 {
					if resp.Label != LabelEmpty {
						return false
					}
				} else {
					if resp != ValOf(model[0]) {
						return false
					}
					model = model[1:]
				}
				st = next
			} else { // enq
				v := int(op % 4)
				next, resp, err := spec.DetApply(st, 2, Enq(v))
				if err != nil {
					return false
				}
				if len(model) >= 8 {
					if resp.Label != LabelFull {
						return false
					}
				} else {
					if resp != OK {
						return false
					}
					model = append(model, v)
				}
				st = next
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sticky cells never change value after the first stick.
func TestStickyCellProperty(t *testing.T) {
	spec := StickyCell(2, 4)
	f := func(vals []uint8) bool {
		st := State(StickyUnset)
		fixed := StickyUnset
		for _, raw := range vals {
			v := int(raw % 4)
			next, _, err := spec.DetApply(st, 1, Inv(OpStick, v))
			if err != nil {
				return false
			}
			if fixed == StickyUnset {
				fixed = v
			}
			st = next
			_, resp, err := spec.DetApply(st, 2, Read)
			if err != nil || resp != ValOf(fixed) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMultiConsensusType(t *testing.T) {
	c := MultiConsensus(3, 5)
	next, resp, err := c.DetApply(ConsensusUndecided, 1, Propose(4))
	if err != nil || next != 4 || resp != ValOf(4) {
		t.Fatalf("first propose: (%v, %v, %v)", next, resp, err)
	}
	_, resp, err = c.DetApply(next, 2, Propose(0))
	if err != nil || resp != ValOf(4) {
		t.Fatalf("later propose: (%v, %v)", resp, err)
	}
	if _, _, err := c.DetApply(ConsensusUndecided, 1, Propose(5)); !errors.Is(err, ErrIllegal) {
		t.Errorf("out-of-range proposal: err = %v", err)
	}
	if len(c.Alphabet) != 5 {
		t.Errorf("alphabet size = %d", len(c.Alphabet))
	}
}

func TestSRSWRegisterType(t *testing.T) {
	r := SRSWRegister(5)
	next, _, err := r.DetApply(0, SRSWBitWriterPort, Write(4))
	if err != nil || next != 4 {
		t.Fatalf("write: (%v, %v)", next, err)
	}
	_, resp, err := r.DetApply(next, SRSWBitReaderPort, Read)
	if err != nil || resp != ValOf(4) {
		t.Fatalf("read: (%v, %v)", resp, err)
	}
	if _, _, err := r.DetApply(0, SRSWBitReaderPort, Write(1)); !errors.Is(err, ErrIllegal) {
		t.Errorf("write on reader port: err = %v", err)
	}
	if _, _, err := r.DetApply(0, SRSWBitWriterPort, Read); !errors.Is(err, ErrIllegal) {
		t.Errorf("read on writer port: err = %v", err)
	}
	if _, _, err := r.DetApply(0, SRSWBitWriterPort, Write(5)); !errors.Is(err, ErrIllegal) {
		t.Errorf("out-of-range write: err = %v", err)
	}
}

func TestAugmentedQueueType(t *testing.T) {
	aq := AugmentedQueue(3, 2, 4)
	st := QueueState()
	// Peek on empty.
	_, resp, err := aq.DetApply(st, 1, Peek)
	if err != nil || resp.Label != LabelEmpty {
		t.Fatalf("peek empty: (%v, %v)", resp, err)
	}
	// Enqueue 1, 0; peek sees the first without consuming.
	st, _, err = aq.DetApply(st, 1, Enq(1))
	if err != nil {
		t.Fatal(err)
	}
	st, _, err = aq.DetApply(st, 2, Enq(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		next, resp, err := aq.DetApply(st, 3, Peek)
		if err != nil || resp != ValOf(1) {
			t.Fatalf("peek #%d: (%v, %v)", i, resp, err)
		}
		if next != st {
			t.Fatalf("peek mutated state: %v -> %v", st, next)
		}
	}
	// Deq still works through the base behavior.
	st, resp, err = aq.DetApply(st, 1, Deq)
	if err != nil || resp != ValOf(1) {
		t.Fatalf("deq: (%v, %v)", resp, err)
	}
	_, resp, err = aq.DetApply(st, 1, Peek)
	if err != nil || resp != ValOf(0) {
		t.Fatalf("peek after deq: (%v, %v)", resp, err)
	}
}

func TestFetchAndConsType(t *testing.T) {
	fc := FetchAndCons(3, 2, 3)
	st := State("")
	next, resp, err := fc.DetApply(st, 1, Cons(1))
	if err != nil || resp != ValOf(1) { // empty list encodes as 1
		t.Fatalf("first cons: (%v, %v)", resp, err)
	}
	st = next
	next, resp, err = fc.DetApply(st, 2, Cons(0))
	if err != nil || resp != ValOf(11) { // list "1" encodes as 11
		t.Fatalf("second cons: (%v, %v)", resp, err)
	}
	st = next
	_, resp, err = fc.DetApply(st, 3, Cons(1))
	if err != nil {
		t.Fatal(err)
	}
	prev := DecodeList(resp.Val)
	if len(prev) != 2 || prev[0] != 0 || prev[1] != 1 {
		t.Fatalf("decoded previous list = %v, want [0 1]", prev)
	}
	// Capacity.
	full := State("010")
	_, resp, err = fc.DetApply(full, 1, Cons(1))
	if err != nil || resp.Label != LabelFull {
		t.Fatalf("cons at capacity: (%v, %v)", resp, err)
	}
}

func TestDecodeListRoundTrip(t *testing.T) {
	for _, s := range []string{"", "1", "01", "110", "0101"} {
		got := DecodeList(encodeList(s))
		if len(got) != len(s) {
			t.Fatalf("%q: decoded %v", s, got)
		}
		for i := range got {
			if got[i] != int(s[i]-'0') {
				t.Fatalf("%q: decoded %v", s, got)
			}
		}
	}
}
