package types

// This file defines the container types of the zoo: FIFO queue and LIFO
// stack. States are strings of digit bytes ('0'..'9') so that they remain
// comparable values; element values are therefore restricted to 0..9,
// which is ample for consensus protocols (they store tokens, not data).

// Operation names used by the container family.
const (
	OpEnq  = "enq"
	OpDeq  = "deq"
	OpPush = "push"
	OpPop  = "pop"
)

// Deq is the dequeue invocation.
var Deq = Invocation{Op: OpDeq}

// Pop is the pop invocation.
var Pop = Invocation{Op: OpPop}

// Enq builds an enq(v) invocation.
func Enq(v int) Invocation { return Invocation{Op: OpEnq, A: v} }

// Push builds a push(v) invocation.
func Push(v int) Invocation { return Invocation{Op: OpPush, A: v} }

// QueueState encodes a queue content (front first) as a state string.
func QueueState(vals ...int) State {
	b := make([]byte, len(vals))
	for i, v := range vals {
		if v < 0 || v > 9 {
			panic("types.QueueState: element values must be 0..9")
		}
		b[i] = byte('0' + v)
	}
	return string(b)
}

// Queue returns the n-port FIFO queue over element values 0..k-1 (k <= 10)
// with the given capacity. deq returns the front element or an "empty"
// response; enq returns "ok" or a "full" response at capacity. Consensus
// number 2.
func Queue(ports, k, capacity int) *Spec {
	if k > 10 {
		panic("types.Queue: at most 10 distinct element values supported")
	}
	alphabet := []Invocation{Deq}
	for v := 0; v < k; v++ {
		alphabet = append(alphabet, Enq(v))
	}
	return &Spec{
		Name:          "queue",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      alphabet,
		Step: func(q State, _ int, inv Invocation) []Transition {
			s, ok := q.(string)
			if !ok {
				return nil
			}
			switch inv.Op {
			case OpEnq:
				if inv.A < 0 || inv.A >= k {
					return nil
				}
				if len(s) >= capacity {
					return []Transition{{Next: s, Resp: Response{Label: LabelFull}}}
				}
				return []Transition{{Next: s + string(byte('0'+inv.A)), Resp: OK}}
			case OpDeq:
				if len(s) == 0 {
					return []Transition{{Next: s, Resp: Response{Label: LabelEmpty}}}
				}
				return []Transition{{Next: s[1:], Resp: ValOf(int(s[0] - '0'))}}
			}
			return nil
		},
	}
}

// Peek is the non-destructive head-read invocation of AugmentedQueue.
var Peek = Invocation{Op: "peek"}

// AugmentedQueue returns the n-port FIFO queue with an additional
// non-destructive peek of the front element. Herlihy showed the
// augmentation lifts the consensus number from 2 to infinity: the first
// enqueued element is visible to everyone forever, so one object solves
// n-process consensus for every n (enqueue the proposal, peek).
func AugmentedQueue(ports, k, capacity int) *Spec {
	base := Queue(ports, k, capacity)
	baseStep := base.Step
	return &Spec{
		Name:          "augmented-queue",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      append(append([]Invocation{}, base.Alphabet...), Peek),
		Step: func(q State, port int, inv Invocation) []Transition {
			if inv.Op != "peek" {
				return baseStep(q, port, inv)
			}
			s, ok := q.(string)
			if !ok {
				return nil
			}
			if len(s) == 0 {
				return []Transition{{Next: s, Resp: Response{Label: LabelEmpty}}}
			}
			return []Transition{{Next: s, Resp: ValOf(int(s[0] - '0'))}}
		},
	}
}

// Stack returns the n-port LIFO stack over element values 0..k-1 (k <= 10)
// with the given capacity. Consensus number 2.
func Stack(ports, k, capacity int) *Spec {
	if k > 10 {
		panic("types.Stack: at most 10 distinct element values supported")
	}
	alphabet := []Invocation{Pop}
	for v := 0; v < k; v++ {
		alphabet = append(alphabet, Push(v))
	}
	return &Spec{
		Name:          "stack",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      alphabet,
		Step: func(q State, _ int, inv Invocation) []Transition {
			s, ok := q.(string)
			if !ok {
				return nil
			}
			switch inv.Op {
			case OpPush:
				if inv.A < 0 || inv.A >= k {
					return nil
				}
				if len(s) >= capacity {
					return []Transition{{Next: s, Resp: Response{Label: LabelFull}}}
				}
				return []Transition{{Next: s + string(byte('0'+inv.A)), Resp: OK}}
			case OpPop:
				if len(s) == 0 {
					return []Transition{{Next: s, Resp: Response{Label: LabelEmpty}}}
				}
				return []Transition{{Next: s[:len(s)-1], Resp: ValOf(int(s[len(s)-1] - '0'))}}
			}
			return nil
		},
	}
}
