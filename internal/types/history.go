package types

import (
	"fmt"
	"strings"
)

// SeqEvent is one port-invocation-response triple of a sequential history
// (Section 2.1 of the paper).
type SeqEvent struct {
	Port int
	Inv  Invocation
	Resp Response
}

// String renders the event as p<port>:<inv>-><resp>.
func (e SeqEvent) String() string {
	return fmt.Sprintf("p%d:%v->%v", e.Port, e.Inv, e.Resp)
}

// SeqHistory is a sequential history of a type: an alternating sequence of
// states and port-invocation-response triples, starting from some initial
// state. Only the triples are stored; intermediate states are recomputed
// during validation.
type SeqHistory []SeqEvent

// String renders the history as a semicolon-separated event list.
func (h SeqHistory) String() string {
	parts := make([]string, len(h))
	for i, e := range h {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Validate checks that h is a legal sequential history of spec from init:
// every event's response must be produced by some allowed transition, and
// the state thread must be consistent. It returns the final state.
//
// For nondeterministic types an event is legal if at least one allowed
// transition matches its response; validation follows the matching branch.
// If several branches match with different next states, validation forks
// and succeeds if any branch admits the remainder of the history.
func (h SeqHistory) Validate(spec *Spec, init State) (State, error) {
	finals, err := h.validateFrom(spec, init, 0)
	if err != nil {
		return nil, err
	}
	return finals[0], nil
}

func (h SeqHistory) validateFrom(spec *Spec, q State, idx int) ([]State, error) {
	if idx == len(h) {
		return []State{q}, nil
	}
	e := h[idx]
	ts, err := spec.Apply(q, e.Port, e.Inv)
	if err != nil {
		return nil, fmt.Errorf("event %d (%v): %w", idx, e, err)
	}
	var finals []State
	var lastErr error
	for _, t := range ts {
		if t.Resp != e.Resp {
			continue
		}
		rest, err := h.validateFrom(spec, t.Next, idx+1)
		if err != nil {
			lastErr = err
			continue
		}
		finals = append(finals, rest...)
	}
	if len(finals) == 0 {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, fmt.Errorf("event %d (%v): response %v not allowed in state %v", idx, e, e.Resp, q)
	}
	return finals, nil
}

// Run executes a sequence of port/invocation pairs against a deterministic
// spec starting at init and returns the resulting history. It fails on the
// first illegal or nondeterministic step.
func Run(spec *Spec, init State, steps []struct {
	Port int
	Inv  Invocation
}) (SeqHistory, State, error) {
	q := init
	h := make(SeqHistory, 0, len(steps))
	for i, s := range steps {
		next, resp, err := spec.DetApply(q, s.Port, s.Inv)
		if err != nil {
			return nil, nil, fmt.Errorf("step %d: %w", i, err)
		}
		h = append(h, SeqEvent{Port: s.Port, Inv: s.Inv, Resp: resp})
		q = next
	}
	return h, q, nil
}

// ReturnValue gives the response of the last event on the given port, used
// by the Section 5.2 non-trivial-pair machinery ("the history's return
// value is the result returned by i_k").
func (h SeqHistory) ReturnValue(port int) (Response, bool) {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Port == port {
			return h[i].Resp, true
		}
	}
	return Response{}, false
}
