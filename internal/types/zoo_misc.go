package types

// This file defines the remaining zoo members: trivial types (Section 5.1's
// counterexamples — types too weak to implement anything), a port-aware
// non-trivial type exercising the general Section 5.2 construction, and a
// Jayanti-style nondeterministic type whose consensus power increases with
// registers (Section 6 context: Theorem 5 shows such a type must be
// nondeterministic).

// Operation names used by the miscellaneous zoo types.
const (
	OpPoke  = "poke"
	OpInc   = "inc"
	OpFlip  = "flip"
	OpPeek  = "peek"
	OpProbe = "probe"
	OpSet   = "set"
)

// Beacon returns a trivial type: every poke answers val(42) and the state
// never changes. |R| = 1, so per Section 5.1 it cannot supply information.
func Beacon(ports int) *Spec {
	return &Spec{
		Name:          "beacon",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      []Invocation{{Op: OpPoke}},
		Step: func(q State, _ int, inv Invocation) []Transition {
			if inv.Op != OpPoke {
				return nil
			}
			return []Transition{{Next: q, Resp: ValOf(42)}}
		},
	}
}

// Blinker returns a trivial type with a non-trivial-looking state space:
// flip toggles an internal bit but always answers ok. The state changes
// yet no invocation can ever observe it, so the type is trivial in the
// formal sense of Section 5.1.
func Blinker(ports int) *Spec {
	return &Spec{
		Name:          "blinker",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      []Invocation{{Op: OpFlip}},
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok || inv.Op != OpFlip {
				return nil
			}
			return []Transition{{Next: 1 - cur, Resp: OK}}
		},
	}
}

// IncOnly returns a trivial unbounded counter that can only be incremented:
// inc answers ok and bumps the hidden count. Like Blinker it is trivial
// because responses carry no information.
func IncOnly(ports int) *Spec {
	return &Spec{
		Name:          "inc-only",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      []Invocation{{Op: OpInc}},
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok || inv.Op != OpInc {
				return nil
			}
			return []Transition{{Next: cur + 1, Resp: OK}}
		},
	}
}

// Toggle returns a NON-trivial two-operation type used in tests as the
// smallest interesting deterministic type: flip toggles the bit answering
// ok; peek answers the bit. The Section 5.1 witness is q=0, i=peek,
// i'=flip.
func Toggle(ports int) *Spec {
	return &Spec{
		Name:          "toggle",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      []Invocation{{Op: OpFlip}, {Op: OpPeek}},
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok {
				return nil
			}
			switch inv.Op {
			case OpFlip:
				return []Transition{{Next: 1 - cur, Resp: OK}}
			case OpPeek:
				return []Transition{{Next: cur, Resp: ValOf(cur)}}
			}
			return nil
		},
	}
}

// latchFlagState is the comparable state of the LatchFlag type.
type latchFlagState struct {
	Flag  int
	Latch int
}

// LatchFlag returns a port-aware, deterministic, non-trivial type designed
// so that no single port-1 invocation distinguishes anything — from ANY
// state — but a pair of invocations does, exercising the k > 1 case of the
// Section 5.2 construction.
//
// Port 2's set raises a flag and answers ok. Port 1's probe answers the
// flag AS OF THE PREVIOUS PROBE: it returns the latch and then reloads the
// latch from the flag. A single probe's response (the old latch) is
// unaffected by any set, so no k = 1 non-trivial pair exists from any
// reachable state; two probes reveal the flag, giving the minimal pair
// H1 = probe;probe (returning 0 from the zero state) versus
// H2 = set;probe;probe (returning 1). Operations are errors on the other
// port, making the type port-aware.
func LatchFlag() *Spec {
	return &Spec{
		Name:          "latch-flag",
		Ports:         2,
		Oblivious:     false,
		Deterministic: true,
		Alphabet:      []Invocation{{Op: OpProbe}, {Op: OpSet}},
		Step: func(q State, port int, inv Invocation) []Transition {
			s, ok := q.(latchFlagState)
			if !ok {
				return nil
			}
			switch {
			case inv.Op == OpProbe && port == 1:
				return []Transition{{
					Next: latchFlagState{Flag: s.Flag, Latch: s.Flag},
					Resp: ValOf(s.Latch),
				}}
			case inv.Op == OpSet && port == 2:
				return []Transition{{Next: latchFlagState{Flag: 1, Latch: s.Latch}, Resp: OK}}
			}
			return nil
		},
	}
}

// LatchFlagInit returns the all-zero initial state of LatchFlag.
func LatchFlagInit() State { return latchFlagState{} }

// NoisySticky returns a NONDETERMINISTIC type with h_m >= 2: a sticky cell
// whose reads are adversarial while the cell is unstuck (they may return
// any value), but faithful once stuck. A stick-then-read protocol solves
// n-process consensus from one object with no registers, so h_m >= 2 holds
// despite the nondeterminism — the type exercises Theorem 5's third case
// (Section 5.3: one-use bits from 2-process consensus), the only route
// available when Section 5's deterministic machinery does not apply.
func NoisySticky(ports, k int) *Spec {
	alphabet := []Invocation{Read}
	for v := 0; v < k; v++ {
		alphabet = append(alphabet, Invocation{Op: OpStick, A: v})
	}
	return &Spec{
		Name:          "noisy-sticky",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: false,
		Alphabet:      alphabet,
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok {
				return nil
			}
			switch inv.Op {
			case OpRead:
				if cur == StickyUnset {
					// Adversarial: any value may come back.
					ts := make([]Transition, k)
					for v := 0; v < k; v++ {
						ts[v] = Transition{Next: cur, Resp: ValOf(v)}
					}
					return ts
				}
				return []Transition{{Next: cur, Resp: ValOf(cur)}}
			case OpStick:
				if inv.A < 0 || inv.A >= k {
					return nil
				}
				next := cur
				if cur == StickyUnset {
					next = inv.A
				}
				return []Transition{{Next: next, Resp: OK}}
			}
			return nil
		},
	}
}

// WeakLeader states: the nondeterministic choice happens on the first
// access; exactly one of the first two accesses wins.
const (
	weakFresh     = 0 // no access yet
	weakWonFirst  = 1 // first access won; second will lose
	weakLostFirst = 2 // first access lost; second will win
	weakDone      = 3 // two accesses consumed; the rest lose
)

// WeakLeader returns a Jayanti-style nondeterministic type: a leader
// elector that cannot transmit data. Its only operation, tas, guarantees
// that exactly one of the first two invocations answers win — but which
// one is chosen nondeterministically (by the adversary). Later invocations
// lose.
//
// With registers, two processes solve consensus using one WeakLeader
// object (announce the proposal in a register, elect, the loser adopts the
// winner's announcement): h_m^r(WeakLeader) >= 2. Without registers the
// object's responses carry only the adversary-controlled win/lose bit, so
// objects of this type alone cannot transmit a proposal between processes:
// h_m(WeakLeader) = 1. Theorem 5 shows this gap is possible only because
// the type is nondeterministic.
func WeakLeader(ports int) *Spec {
	return &Spec{
		Name:          "weak-leader",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: false,
		Alphabet:      []Invocation{TAS},
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok || inv.Op != OpTAS {
				return nil
			}
			switch cur {
			case weakFresh:
				return []Transition{
					{Next: weakWonFirst, Resp: Response{Label: LabelWin}},
					{Next: weakLostFirst, Resp: Response{Label: LabelLose}},
				}
			case weakWonFirst:
				return []Transition{{Next: weakDone, Resp: Response{Label: LabelLose}}}
			case weakLostFirst:
				return []Transition{{Next: weakDone, Resp: Response{Label: LabelWin}}}
			case weakDone:
				return []Transition{{Next: weakDone, Resp: Response{Label: LabelLose}}}
			}
			return nil
		},
	}
}
