package types

import (
	"errors"
	"fmt"
	"strings"
)

// ErrAuditInconclusive reports an Audit that could not settle its verdict
// because the reachable state space exceeded the exploration limit: no
// contradiction was found, but the flags were not verified either. It
// used to be reported as a silent pass, which let a lying Spec through
// whenever its state space was merely large; callers that want a
// best-effort lint can errors.Is for this sentinel and downgrade it to a
// warning (cmd/hierarchy -audit does).
var ErrAuditInconclusive = errors.New("types: audit inconclusive (state space exceeds the exploration limit)")

// Audit cross-checks a Spec's declared flags against its computed
// behavior over the fragment reachable from init: the Deterministic flag
// must match the absence of branching transitions, the Oblivious flag must
// match port-independence, every alphabet invocation must be legal in at
// least one reachable state, and transitions must stay inside legal
// responses. It is the lint that keeps the type zoo honest — a Spec whose
// flags lie poisons every analysis built on them (triviality, witness
// search, the explorer's branching).
//
// Definite contradictions are reported first — even a truncated
// exploration that found a branch condemns a Deterministic flag. If every
// check that DID complete passes but any exploration hit limit, Audit
// returns ErrAuditInconclusive instead of pretending the spec verified.
func Audit(spec *Spec, init State, limit int) error {
	if spec.Name == "" {
		return errors.New("types: spec has no name")
	}
	if spec.Ports < 1 {
		return fmt.Errorf("types: %q has %d ports", spec.Name, spec.Ports)
	}
	if len(spec.Alphabet) == 0 {
		return fmt.Errorf("types: %q has an empty alphabet", spec.Name)
	}
	if spec.Step == nil {
		return fmt.Errorf("types: %q has no transition function", spec.Name)
	}

	detErr := CheckDeterministic(spec, init, limit)
	switch {
	case spec.Deterministic && detErr != nil && !errors.Is(detErr, ErrStateSpaceTooLarge):
		return fmt.Errorf("types: %q declares Deterministic but branches: %w", spec.Name, detErr)
	case !spec.Deterministic && detErr == nil:
		return fmt.Errorf("types: %q declares nondeterminism but never branches (from %v)", spec.Name, init)
	}

	oblErr := CheckOblivious(spec, init, limit)
	switch {
	case spec.Oblivious && oblErr != nil && !errors.Is(oblErr, ErrStateSpaceTooLarge):
		return fmt.Errorf("types: %q declares Oblivious but is port-aware: %w", spec.Name, oblErr)
	case !spec.Oblivious && oblErr == nil:
		return fmt.Errorf("types: %q declares port-awareness but all ports agree (from %v)", spec.Name, init)
	}

	// Every alphabet invocation must be usable somewhere reachable.
	states, reachErr := Reachable(spec, init, limit)
	if reachErr != nil && !errors.Is(reachErr, ErrStateSpaceTooLarge) {
		return reachErr
	}
	truncatedReach := errors.Is(reachErr, ErrStateSpaceTooLarge)
	for _, inv := range spec.Alphabet {
		used := false
	scan:
		for _, q := range states {
			for port := 1; port <= spec.Ports; port++ {
				if len(spec.Step(q, port, inv)) > 0 {
					used = true
					break scan
				}
			}
		}
		// An entry unused within a TRUNCATED state set may still be legal
		// in a state beyond the limit: that is inconclusive (reported
		// below), not a definite failure.
		if !used && !truncatedReach {
			return fmt.Errorf("types: %q alphabet entry %v is illegal in every reachable state", spec.Name, inv)
		}
	}

	// No contradiction found — but a check that ran out of state budget
	// proved nothing. Name the checks left unsettled.
	var unsettled []string
	if errors.Is(detErr, ErrStateSpaceTooLarge) {
		unsettled = append(unsettled, "determinism")
	}
	if errors.Is(oblErr, ErrStateSpaceTooLarge) {
		unsettled = append(unsettled, "obliviousness")
	}
	if truncatedReach {
		unsettled = append(unsettled, "alphabet reachability")
	}
	if len(unsettled) > 0 {
		return fmt.Errorf("%w: %q: unverified: %s", ErrAuditInconclusive, spec.Name, strings.Join(unsettled, ", "))
	}
	return nil
}
