package types

import (
	"errors"
	"fmt"
)

// Audit cross-checks a Spec's declared flags against its computed
// behavior over the fragment reachable from init: the Deterministic flag
// must match the absence of branching transitions, the Oblivious flag must
// match port-independence, every alphabet invocation must be legal in at
// least one reachable state, and transitions must stay inside legal
// responses. It is the lint that keeps the type zoo honest — a Spec whose
// flags lie poisons every analysis built on them (triviality, witness
// search, the explorer's branching).
func Audit(spec *Spec, init State, limit int) error {
	if spec.Name == "" {
		return errors.New("types: spec has no name")
	}
	if spec.Ports < 1 {
		return fmt.Errorf("types: %q has %d ports", spec.Name, spec.Ports)
	}
	if len(spec.Alphabet) == 0 {
		return fmt.Errorf("types: %q has an empty alphabet", spec.Name)
	}
	if spec.Step == nil {
		return fmt.Errorf("types: %q has no transition function", spec.Name)
	}

	detErr := CheckDeterministic(spec, init, limit)
	switch {
	case spec.Deterministic && detErr != nil && !errors.Is(detErr, ErrStateSpaceTooLarge):
		return fmt.Errorf("types: %q declares Deterministic but branches: %w", spec.Name, detErr)
	case !spec.Deterministic && detErr == nil:
		return fmt.Errorf("types: %q declares nondeterminism but never branches (from %v)", spec.Name, init)
	}

	oblErr := CheckOblivious(spec, init, limit)
	switch {
	case spec.Oblivious && oblErr != nil && !errors.Is(oblErr, ErrStateSpaceTooLarge):
		return fmt.Errorf("types: %q declares Oblivious but is port-aware: %w", spec.Name, oblErr)
	case !spec.Oblivious && oblErr == nil:
		return fmt.Errorf("types: %q declares port-awareness but all ports agree (from %v)", spec.Name, init)
	}

	// Every alphabet invocation must be usable somewhere reachable.
	states, err := Reachable(spec, init, limit)
	if err != nil && !errors.Is(err, ErrStateSpaceTooLarge) {
		return err
	}
	for _, inv := range spec.Alphabet {
		used := false
	scan:
		for _, q := range states {
			for port := 1; port <= spec.Ports; port++ {
				if len(spec.Step(q, port, inv)) > 0 {
					used = true
					break scan
				}
			}
		}
		if !used {
			return fmt.Errorf("types: %q alphabet entry %v is illegal in every reachable state", spec.Name, inv)
		}
	}
	return nil
}
