// Package types implements the concurrent data-type framework of Bazzi,
// Neiger, and Peterson, "On the Use of Registers in Achieving Wait-Free
// Consensus" (PODC 1994), Section 2.1.
//
// A type is a 5-tuple T = <n, Q, I, R, delta>: n ports, a state set Q, a set
// of access invocations I, a set of access responses R, and a transition
// function delta. A type may be deterministic (delta maps each
// state/port/invocation to exactly one state/response pair) or
// nondeterministic (it maps to a nonempty set of pairs), and oblivious (the
// transition does not depend on the port) or port-aware.
//
// States are represented as comparable Go values and are treated as
// immutable: a transition never mutates a state in place, it returns a new
// one. This makes configurations of many objects cheap to copy and safe to
// use as map keys in the execution-tree explorer.
package types

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// State is an object state. Concrete states must be comparable values
// (ints, strings, small structs or arrays of such) and must be treated as
// immutable by all code.
type State any

// Invocation is an access invocation (an element of I). Op names the
// operation; A and B carry up to two integer arguments (for example
// write(v) uses A=v and cas(old,new) uses A=old, B=new). Invocation is a
// comparable value.
type Invocation struct {
	Op string `json:"op"`
	A  int    `json:"a,omitempty"`
	B  int    `json:"b,omitempty"`
}

// Inv builds an Invocation from an operation name and up to two integer
// arguments. Extra arguments beyond two are rejected at construction time
// so call sites fail loudly during development rather than silently
// truncating.
func Inv(op string, args ...int) Invocation {
	inv := Invocation{Op: op}
	switch len(args) {
	case 0:
	case 1:
		inv.A = args[0]
	case 2:
		inv.A = args[0]
		inv.B = args[1]
	default:
		panic("types.Inv: at most two invocation arguments are supported")
	}
	return inv
}

// String renders the invocation as op, op(a), or op(a,b). Argument count is
// inferred per operation name by convention: zero-argument operations leave
// A and B at zero, which prints compactly.
func (i Invocation) String() string {
	if i.A == 0 && i.B == 0 {
		return i.Op
	}
	if i.B == 0 {
		return i.Op + "(" + strconv.Itoa(i.A) + ")"
	}
	return i.Op + "(" + strconv.Itoa(i.A) + "," + strconv.Itoa(i.B) + ")"
}

// Response is an access response (an element of R). Label distinguishes
// response classes ("ok", "val", "empty", ...); Val carries an integer
// payload for value-bearing responses. Response is a comparable value.
type Response struct {
	Label string `json:"label"`
	Val   int    `json:"val,omitempty"`
}

// Common response labels used throughout the type zoo.
const (
	LabelOK    = "ok"
	LabelVal   = "val"
	LabelEmpty = "empty"
	LabelFull  = "full"
	LabelWin   = "win"
	LabelLose  = "lose"
	LabelErr   = "err"
)

// OK is the information-free acknowledgement response.
var OK = Response{Label: LabelOK}

// ValOf builds a value-bearing response.
func ValOf(v int) Response { return Response{Label: LabelVal, Val: v} }

// String renders the response as label or label(v).
func (r Response) String() string {
	if r.Label == LabelVal {
		return "val(" + strconv.Itoa(r.Val) + ")"
	}
	if r.Val == 0 {
		return r.Label
	}
	return r.Label + "(" + strconv.Itoa(r.Val) + ")"
}

// Transition is one allowed outcome of an invocation: the object's next
// state and the response returned over the invoking port.
type Transition struct {
	Next State
	Resp Response
}

// Spec is the machine-readable form of a type T = <n, Q, I, R, delta>.
//
// Step implements delta: it returns the set of allowed transitions for the
// given state, port, and invocation. An empty result means the invocation
// is illegal at that state/port (not part of the type's sequential
// specification); the framework reports such applications as errors rather
// than inventing behavior.
//
// Alphabet lists a finite, representative set of invocations used by
// state-space analyses (reachability, triviality, witness search). For
// types whose invocation set is infinite, Alphabet is a finite restriction
// and analyses are sound with respect to it.
type Spec struct {
	Name          string
	Ports         int
	Oblivious     bool
	Deterministic bool
	Alphabet      []Invocation
	Step          func(q State, port int, inv Invocation) []Transition
}

// Errors reported by Spec application helpers.
var (
	// ErrIllegal reports an invocation with no allowed transition.
	ErrIllegal = errors.New("types: invocation illegal in this state/port")
	// ErrNondeterministic reports a DetApply on a branching transition.
	ErrNondeterministic = errors.New("types: transition is nondeterministic")
	// ErrBadPort reports a port number outside 1..Ports.
	ErrBadPort = errors.New("types: port out of range")
)

// Apply returns the allowed transitions for inv on the given port, checking
// port bounds and legality.
func (s *Spec) Apply(q State, port int, inv Invocation) ([]Transition, error) {
	if port < 1 || port > s.Ports {
		return nil, fmt.Errorf("%w: port %d of %q (have %d)", ErrBadPort, port, s.Name, s.Ports)
	}
	ts := s.Step(q, port, inv)
	if len(ts) == 0 {
		return nil, fmt.Errorf("%w: %v in state %v on port %d of %q", ErrIllegal, inv, q, port, s.Name)
	}
	return ts, nil
}

// DetApply applies a transition that must be deterministic, returning the
// unique next state and response.
func (s *Spec) DetApply(q State, port int, inv Invocation) (State, Response, error) {
	ts, err := s.Apply(q, port, inv)
	if err != nil {
		return nil, Response{}, err
	}
	if len(ts) != 1 {
		return nil, Response{}, fmt.Errorf("%w: %v in state %v of %q has %d outcomes",
			ErrNondeterministic, inv, q, s.Name, len(ts))
	}
	return ts[0].Next, ts[0].Resp, nil
}

// Legal reports whether inv has at least one allowed transition at q/port.
func (s *Spec) Legal(q State, port int, inv Invocation) bool {
	if port < 1 || port > s.Ports {
		return false
	}
	return len(s.Step(q, port, inv)) > 0
}

// StateKey renders a state to a stable string for diagnostics and for use
// in composite map keys. States are comparable, so this is only needed
// where heterogeneous states meet (for example, sorting).
func StateKey(q State) string { return fmt.Sprintf("%v", q) }

// FormatStates renders a state set deterministically for test output.
func FormatStates(states []State) string {
	keys := make([]string, 0, len(states))
	for _, q := range states {
		keys = append(keys, StateKey(q))
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}
