package types

// This file defines the classic read-modify-write types of the zoo:
// test-and-set, swap, fetch-and-add, compare-and-swap, and sticky objects.
// All are oblivious and deterministic; their consensus numbers are the
// well-known values from Herlihy's hierarchy.

// Operation names used by the read-modify-write family.
const (
	OpTAS   = "tas"
	OpSwap  = "swap"
	OpFAA   = "faa"
	OpCAS   = "cas"
	OpStick = "stick"
)

// TAS is the test-and-set invocation.
var TAS = Invocation{Op: OpTAS}

// TestAndSet returns the n-port test-and-set bit: tas returns the previous
// value (0 or 1) and sets the bit to 1. Its consensus number is 2.
func TestAndSet(ports int) *Spec {
	return &Spec{
		Name:          "test-and-set",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      []Invocation{TAS},
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok || inv.Op != OpTAS {
				return nil
			}
			return []Transition{{Next: 1, Resp: ValOf(cur)}}
		},
	}
}

// Swap returns the n-port, k-valued swap register: swap(v) stores v and
// returns the previous value. Reads are swap-free (use Register to read);
// consensus number 2.
func Swap(ports, k int) *Spec {
	alphabet := make([]Invocation, 0, k)
	for v := 0; v < k; v++ {
		alphabet = append(alphabet, Invocation{Op: OpSwap, A: v})
	}
	return &Spec{
		Name:          "swap",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      alphabet,
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok || inv.Op != OpSwap || inv.A < 0 || inv.A >= k {
				return nil
			}
			return []Transition{{Next: inv.A, Resp: ValOf(cur)}}
		},
	}
}

// FetchAdd returns the n-port fetch-and-add counter: faa(d) returns the
// previous value and adds d. The analysis alphabet is restricted to
// d in {0, 1}; the state space is unbounded, so bounded analyses apply.
// Consensus number 2.
func FetchAdd(ports int) *Spec {
	return &Spec{
		Name:          "fetch-and-add",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      []Invocation{{Op: OpFAA, A: 0}, {Op: OpFAA, A: 1}},
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok || inv.Op != OpFAA {
				return nil
			}
			return []Transition{{Next: cur + inv.A, Resp: ValOf(cur)}}
		},
	}
}

// CASOld labels the response of a compare-and-swap, carrying the value
// observed before the operation; success is inferred by comparing it with
// the expected value.
const CASOld = "old"

// CompareSwap returns the n-port, k-valued compare-and-swap register:
// cas(exp,new) installs new iff the current value is exp and always returns
// the prior value; read returns the current value. Consensus number
// infinity (n for every n).
func CompareSwap(ports, k int) *Spec {
	alphabet := []Invocation{Read}
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			alphabet = append(alphabet, Invocation{Op: OpCAS, A: a, B: b})
		}
	}
	return &Spec{
		Name:          "compare-and-swap",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      alphabet,
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok {
				return nil
			}
			switch inv.Op {
			case OpRead:
				return []Transition{{Next: cur, Resp: ValOf(cur)}}
			case OpCAS:
				if inv.A < 0 || inv.A >= k || inv.B < 0 || inv.B >= k {
					return nil
				}
				next := cur
				if cur == inv.A {
					next = inv.B
				}
				return []Transition{{Next: next, Resp: Response{Label: CASOld, Val: cur}}}
			}
			return nil
		},
	}
}

// StickyUnset is the initial, unwritten state of sticky objects.
const StickyUnset = -1

// StickyCell returns the n-port, k-valued sticky cell: the first stick(v)
// fixes the cell's value forever; later sticks are ignored; read returns
// the fixed value, or StickyUnset before any stick. A single sticky cell
// solves n-process consensus for every n.
func StickyCell(ports, k int) *Spec {
	alphabet := []Invocation{Read}
	for v := 0; v < k; v++ {
		alphabet = append(alphabet, Invocation{Op: OpStick, A: v})
	}
	return &Spec{
		Name:          "sticky-cell",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      alphabet,
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok {
				return nil
			}
			switch inv.Op {
			case OpRead:
				return []Transition{{Next: cur, Resp: ValOf(cur)}}
			case OpStick:
				if inv.A < 0 || inv.A >= k {
					return nil
				}
				next := cur
				if cur == StickyUnset {
					next = inv.A
				}
				return []Transition{{Next: next, Resp: OK}}
			}
			return nil
		},
	}
}

// StickyBit returns the binary sticky bit (Plotkin): a 2-valued sticky
// cell.
func StickyBit(ports int) *Spec {
	s := StickyCell(ports, 2)
	s.Name = "sticky-bit"
	return s
}

// OpCons is the fetch-and-cons invocation name.
const OpCons = "cons"

// Cons builds a cons(v) invocation.
func Cons(v int) Invocation { return Invocation{Op: OpCons, A: v} }

// FetchAndCons returns Herlihy's fetch-and-cons list: cons(v) prepends v
// and returns the PREVIOUS list content (most recent first, encoded like
// queue states). The first process to cons sees the empty list and its
// element sits at the tail of every later response, so one object solves
// n-process consensus for every n. Element values 0..k-1 (k <= 10);
// capacity bounds the list for finite analysis.
func FetchAndCons(ports, k, capacity int) *Spec {
	if k > 10 {
		panic("types.FetchAndCons: at most 10 distinct element values supported")
	}
	alphabet := make([]Invocation, k)
	for v := 0; v < k; v++ {
		alphabet[v] = Cons(v)
	}
	return &Spec{
		Name:          "fetch-and-cons",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      alphabet,
		Step: func(q State, _ int, inv Invocation) []Transition {
			s, ok := q.(string)
			if !ok || inv.Op != OpCons || inv.A < 0 || inv.A >= k {
				return nil
			}
			if len(s) >= capacity {
				return []Transition{{Next: s, Resp: Response{Label: LabelFull}}}
			}
			// Respond with the previous list encoded as an integer in
			// base 10 with a leading 1 sentinel (so that "" and "0"
			// differ); prepend the new element.
			return []Transition{{
				Next: string(byte('0'+inv.A)) + s,
				Resp: ValOf(encodeList(s)),
			}}
		},
	}
}

// encodeList packs a digit-string list into an int with a leading 1
// sentinel; the empty list encodes as 1.
func encodeList(s string) int {
	n := 1
	for i := 0; i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	return n
}

// DecodeList reverses encodeList for protocol use: it returns the list
// digits (most recent first).
func DecodeList(n int) []int {
	var rev []int
	for n > 1 {
		rev = append(rev, n%10)
		n /= 10
	}
	// rev is tail-first; reverse to most-recent-first.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
