package types

// This file defines the two types that drive the paper: the n-process
// binary consensus type T_{c,n} (Section 2.1) and the one-use bit T_{1u}
// (Section 3).

// Operation names used by the consensus and one-use bit types.
const (
	OpPropose = "propose"
)

// ConsensusUndecided is the initial (bottom) consensus state.
const ConsensusUndecided = -1

// Propose builds the propose(v) invocation for v in {0, 1}.
func Propose(v int) Invocation { return Invocation{Op: OpPropose, A: v} }

// Consensus returns the n-process binary consensus type T_{c,n} exactly as
// specified in Section 2.1: states {bottom, 0, 1}; invocations 0 and 1; the
// first invocation fixes the state and every invocation returns the fixed
// value (the consensus value of the object).
func Consensus(ports int) *Spec {
	return &Spec{
		Name:          "consensus",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      []Invocation{Propose(0), Propose(1)},
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok || inv.Op != OpPropose || (inv.A != 0 && inv.A != 1) {
				return nil
			}
			if cur == ConsensusUndecided {
				return []Transition{{Next: inv.A, Resp: ValOf(inv.A)}}
			}
			return []Transition{{Next: cur, Resp: ValOf(cur)}}
		},
	}
}

// MultiConsensus returns the k-valued n-process consensus type: like the
// paper's binary T_{c,n} but with proposals 0..k-1. It is the target type
// of the multi-valued-from-binary construction (package multivalue) and of
// the generalized checker explore.ConsensusK.
func MultiConsensus(ports, k int) *Spec {
	alphabet := make([]Invocation, k)
	for v := range alphabet {
		alphabet[v] = Propose(v)
	}
	return &Spec{
		Name:          "multi-consensus",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      alphabet,
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok || inv.Op != OpPropose || inv.A < 0 || inv.A >= k {
				return nil
			}
			if cur == ConsensusUndecided {
				return []Transition{{Next: inv.A, Resp: ValOf(inv.A)}}
			}
			return []Transition{{Next: cur, Resp: ValOf(cur)}}
		},
	}
}

// One-use bit states (Section 3).
const (
	OneUseUnset = "unset"
	OneUseSet   = "set"
	OneUseDead  = "dead"
)

// OneUseBit returns the one-use bit type T_{1u} of Section 3, verbatim:
//
//	delta(UNSET, read)  = {(DEAD, 0)}
//	delta(SET,   read)  = {(DEAD, 1)}
//	delta(DEAD,  read)  = {(DEAD, 0), (DEAD, 1)}
//	delta(UNSET, write) = {(SET,  ok)}
//	delta(SET,   write) = {(DEAD, ok)}
//	delta(DEAD,  write) = {(DEAD, ok)}
//
// The type is 2-port and oblivious; it is nondeterministic only on reads in
// the DEAD state, and as the paper notes that nondeterminism plays no role
// in any of its uses (a correct client never reads a DEAD bit).
func OneUseBit() *Spec {
	return &Spec{
		Name:          "one-use-bit",
		Ports:         2,
		Oblivious:     true,
		Deterministic: false,
		Alphabet:      []Invocation{Read, Write(1)},
		Step: func(q State, _ int, inv Invocation) []Transition {
			s, ok := q.(string)
			if !ok {
				return nil
			}
			switch inv.Op {
			case OpRead:
				switch s {
				case OneUseUnset:
					return []Transition{{Next: OneUseDead, Resp: ValOf(0)}}
				case OneUseSet:
					return []Transition{{Next: OneUseDead, Resp: ValOf(1)}}
				case OneUseDead:
					return []Transition{
						{Next: OneUseDead, Resp: ValOf(0)},
						{Next: OneUseDead, Resp: ValOf(1)},
					}
				}
			case OpWrite:
				switch s {
				case OneUseUnset:
					return []Transition{{Next: OneUseSet, Resp: OK}}
				case OneUseSet, OneUseDead:
					return []Transition{{Next: OneUseDead, Resp: OK}}
				}
			}
			return nil
		},
	}
}
