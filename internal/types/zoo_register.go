package types

// This file defines the read/write register family of the type zoo.
// Register states are plain ints holding the current value.

// Operation names used by the register family.
const (
	OpRead  = "read"
	OpWrite = "write"
)

// Read is the argument-free read invocation.
var Read = Invocation{Op: OpRead}

// Write builds a write(v) invocation.
func Write(v int) Invocation { return Invocation{Op: OpWrite, A: v} }

// Register returns the n-port, k-valued multi-reader multi-writer atomic
// register type. Values range over 0..k-1; writes of out-of-range values
// are illegal. The type is oblivious and deterministic.
func Register(ports, k int) *Spec {
	alphabet := make([]Invocation, 0, k+1)
	alphabet = append(alphabet, Read)
	for v := 0; v < k; v++ {
		alphabet = append(alphabet, Write(v))
	}
	return &Spec{
		Name:          "register",
		Ports:         ports,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      alphabet,
		Step: func(q State, _ int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok {
				return nil
			}
			switch inv.Op {
			case OpRead:
				return []Transition{{Next: cur, Resp: ValOf(cur)}}
			case OpWrite:
				if inv.A < 0 || inv.A >= k {
					return nil
				}
				return []Transition{{Next: inv.A, Resp: OK}}
			}
			return nil
		},
	}
}

// Bit returns the n-port multi-reader multi-writer atomic boolean register.
func Bit(ports int) *Spec {
	s := Register(ports, 2)
	s.Name = "bit"
	return s
}

// SRSWBit returns the single-reader single-writer atomic bit: a 2-port,
// port-aware type on which port 1 may only read and port 2 may only write.
// This is the register form the Theorem 5 pipeline consumes — Section 4.1
// of the paper reduces all registers to these.
func SRSWBit() *Spec {
	return &Spec{
		Name:          "srsw-bit",
		Ports:         2,
		Oblivious:     false,
		Deterministic: true,
		Alphabet:      []Invocation{Read, Write(0), Write(1)},
		Step: func(q State, port int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok {
				return nil
			}
			switch {
			case inv.Op == OpRead && port == 1:
				return []Transition{{Next: cur, Resp: ValOf(cur)}}
			case inv.Op == OpWrite && port == 2:
				if inv.A != 0 && inv.A != 1 {
					return nil
				}
				return []Transition{{Next: inv.A, Resp: OK}}
			}
			return nil
		},
	}
}

// SRSWBitReaderPort and SRSWBitWriterPort name the port convention of
// SRSWBit: the reading process connects to port 1 and the writing process
// to port 2, matching the reader/writer roles of Sections 4.3 and 5.2.
const (
	SRSWBitReaderPort = 1
	SRSWBitWriterPort = 2
)

// SRSWRegister returns the single-reader single-writer k-valued atomic
// register: port 1 reads, port 2 writes. The Theorem 5 pipeline compiles
// these into SRSW bits via the machine-level Vidyasankar construction
// (core.CompileSRSWRegisters), which is the Section 4.1 reduction run at
// the program level.
func SRSWRegister(k int) *Spec {
	alphabet := make([]Invocation, 0, k+1)
	alphabet = append(alphabet, Read)
	for v := 0; v < k; v++ {
		alphabet = append(alphabet, Write(v))
	}
	return &Spec{
		Name:          "srsw-register",
		Ports:         2,
		Oblivious:     false,
		Deterministic: true,
		Alphabet:      alphabet,
		Step: func(q State, port int, inv Invocation) []Transition {
			cur, ok := q.(int)
			if !ok {
				return nil
			}
			switch {
			case inv.Op == OpRead && port == SRSWBitReaderPort:
				return []Transition{{Next: cur, Resp: ValOf(cur)}}
			case inv.Op == OpWrite && port == SRSWBitWriterPort:
				if inv.A < 0 || inv.A >= k {
					return nil
				}
				return []Transition{{Next: inv.A, Resp: OK}}
			}
			return nil
		},
	}
}
