package types

import (
	"errors"
	"strings"
	"testing"
)

// TestAuditZoo lints every zoo member: declared flags must match computed
// behavior. This is the regression net for the type definitions everything
// else is built on.
func TestAuditZoo(t *testing.T) {
	cases := []struct {
		spec *Spec
		init State
	}{
		{Register(3, 3), 0},
		{Bit(2), 0},
		{SRSWBit(), 0},
		{SRSWRegister(4), 0},
		{TestAndSet(2), 0},
		{Swap(2, 2), 0},
		{CompareSwap(2, 3), 2},
		{Queue(2, 2, 3), QueueState()},
		{Stack(2, 2, 3), QueueState()},
		{AugmentedQueue(2, 2, 3), QueueState()},
		{StickyCell(2, 2), StickyUnset},
		{StickyBit(2), StickyUnset},
		{Consensus(2), ConsensusUndecided},
		{MultiConsensus(2, 4), ConsensusUndecided},
		{OneUseBit(), OneUseUnset},
		{Toggle(2), 0},
		{LatchFlag(), LatchFlagInit()},
		{Beacon(2), 0},
		{Blinker(2), 0},
		{WeakLeader(2), 0},
	}
	for _, tc := range cases {
		if err := Audit(tc.spec, tc.init, 64); err != nil {
			t.Errorf("%s: %v", tc.spec.Name, err)
		}
	}
}

// TestAuditInconclusive pins the exhaustion contract: a spec whose state
// space exceeds the limit audits as ErrAuditInconclusive — never as a
// silent pass (the old behavior) — while a contradiction found before the
// budget runs out is still a definite failure.
func TestAuditInconclusive(t *testing.T) {
	// The unbounded-counter specs (inc-only, fetch-and-add) can never be
	// fully explored: no budget makes their audit conclusive, and the old
	// silent pass hid exactly that.
	for _, spec := range []*Spec{IncOnly(2), FetchAdd(2)} {
		if err := Audit(spec, 0, 64); !errors.Is(err, ErrAuditInconclusive) {
			t.Fatalf("%s at limit 64: err = %v, want ErrAuditInconclusive", spec.Name, err)
		}
	}
	// Definite contradictions beat exhaustion: an unbounded spec that
	// branches at every state condemns its Deterministic flag even though
	// full exploration is impossible.
	branching := &Spec{
		Name:          "unbounded-branching",
		Ports:         1,
		Deterministic: true,
		Alphabet:      []Invocation{Read},
		Step: func(q State, port int, inv Invocation) []Transition {
			n := q.(int)
			return []Transition{
				{Next: n + 1, Resp: ValOf(n)},
				{Next: n + 2, Resp: ValOf(n)},
			}
		},
	}
	err := Audit(branching, 0, 8)
	if err == nil || errors.Is(err, ErrAuditInconclusive) || !strings.Contains(err.Error(), "branches") {
		t.Errorf("branching unbounded spec: err = %v, want a definite determinism failure", err)
	}
}

func TestAuditCatchesLyingFlags(t *testing.T) {
	// Declares Deterministic but branches.
	lyingDet := OneUseBit()
	lyingDet.Deterministic = true
	if err := Audit(lyingDet, OneUseUnset, 32); err == nil || !strings.Contains(err.Error(), "branches") {
		t.Errorf("lying Deterministic flag: err = %v", err)
	}
	// Declares nondeterministic but never branches.
	lyingNondet := Register(2, 2)
	lyingNondet.Deterministic = false
	if err := Audit(lyingNondet, 0, 32); err == nil || !strings.Contains(err.Error(), "never branches") {
		t.Errorf("lying nondeterminism flag: err = %v", err)
	}
	// Declares Oblivious but is port-aware.
	lyingObl := SRSWBit()
	lyingObl.Oblivious = true
	if err := Audit(lyingObl, 0, 32); err == nil || !strings.Contains(err.Error(), "port-aware") {
		t.Errorf("lying Oblivious flag: err = %v", err)
	}
	// Declares port-awareness but all ports agree.
	lyingAware := Register(2, 2)
	lyingAware.Oblivious = false
	if err := Audit(lyingAware, 0, 32); err == nil || !strings.Contains(err.Error(), "ports agree") {
		t.Errorf("lying port-awareness flag: err = %v", err)
	}
}

func TestAuditCatchesStructuralProblems(t *testing.T) {
	base := Register(2, 2)

	anon := *base
	anon.Name = ""
	if err := Audit(&anon, 0, 32); err == nil {
		t.Error("nameless spec accepted")
	}

	noPorts := *base
	noPorts.Ports = 0
	if err := Audit(&noPorts, 0, 32); err == nil {
		t.Error("portless spec accepted")
	}

	noAlpha := *base
	noAlpha.Alphabet = nil
	if err := Audit(&noAlpha, 0, 32); err == nil {
		t.Error("alphabetless spec accepted")
	}

	deadInv := *base
	deadInv.Alphabet = append([]Invocation{}, base.Alphabet...)
	deadInv.Alphabet = append(deadInv.Alphabet, Inv("ghost"))
	if err := Audit(&deadInv, 0, 32); err == nil || !strings.Contains(err.Error(), "illegal in every reachable state") {
		t.Errorf("dead alphabet entry: err = %v", err)
	}
}
