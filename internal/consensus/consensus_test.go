package consensus

import (
	"testing"

	"waitfree/internal/explore"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// TestAllTwoProcessProtocolsCorrect model-checks every register-using
// 2-process protocol over all proposal vectors, interleavings, and
// nondeterministic resolutions.
func TestAllTwoProcessProtocolsCorrect(t *testing.T) {
	for _, im := range RegisterUsing() {
		im := im
		t.Run(im.Name, func(t *testing.T) {
			report, err := explore.Consensus(im, explore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK() {
				t.Fatalf("%s\n%v", report.Summary(), report.Violation)
			}
			if len(report.Decisions) != 2 {
				t.Errorf("decisions = %v, want both 0 and 1 reachable", report.Decisions)
			}
		})
	}
}

func TestWeakLeader2CorrectUnderAllAdversaries(t *testing.T) {
	report, err := explore.Consensus(WeakLeader2(), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("%s\n%v", report.Summary(), report.Violation)
	}
}

func TestCASConsensusScales(t *testing.T) {
	for _, procs := range []int{2, 3, 4} {
		report, err := explore.Consensus(CAS(procs), explore.Options{Memoize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK() {
			t.Fatalf("procs=%d: %s\n%v", procs, report.Summary(), report.Violation)
		}
		if report.Depth != procs {
			t.Errorf("procs=%d: D = %d, want %d", procs, report.Depth, procs)
		}
	}
}

func TestStickyConsensusScales(t *testing.T) {
	for _, procs := range []int{2, 3} {
		report, err := explore.Consensus(Sticky(procs), explore.Options{Memoize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK() {
			t.Fatalf("procs=%d: %s\n%v", procs, report.Summary(), report.Violation)
		}
		// stick + read per process.
		if report.Depth != 2*procs {
			t.Errorf("procs=%d: D = %d, want %d", procs, report.Depth, 2*procs)
		}
	}
}

func TestNaiveRegisterProtocolFails(t *testing.T) {
	report, err := explore.Consensus(NaiveRegister2(), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("register-only protocol reported correct; registers cannot solve 2-consensus")
	}
	if report.Agreement {
		t.Error("expected an agreement violation")
	}
	if report.Violation == nil || len(report.Violation.Schedule) == 0 {
		t.Error("expected a counterexample schedule")
	}
}

// TestProtocolsValidateStructurally checks Validate on every protocol.
func TestProtocolsValidateStructurally(t *testing.T) {
	all := append(RegisterUsing(), WeakLeader2(), CAS(3), Sticky(3), NaiveRegister2())
	for _, im := range all {
		if err := im.Validate(); err != nil {
			t.Errorf("%s: %v", im.Name, err)
		}
	}
}

// TestElectionObjectAccessBounds verifies the Section 4.2 access bounds of
// every register-using protocol: each SRSW prefer bit is written at most
// once and read at most once, and the election object is touched at most
// once per process.
func TestElectionObjectAccessBounds(t *testing.T) {
	for _, im := range RegisterUsing() {
		im := im
		t.Run(im.Name, func(t *testing.T) {
			report, err := explore.Consensus(im, explore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := report.MaxAccess[0]; got != 2 {
				t.Errorf("election object bound = %d, want 2", got)
			}
			for obj := 1; obj <= 2; obj++ {
				if got := report.OpAccess[obj][types.OpWrite]; got != 1 {
					t.Errorf("obj%d write bound = %d, want 1", obj, got)
				}
				if got := report.OpAccess[obj][types.OpRead]; got != 1 {
					t.Errorf("obj%d read bound = %d, want 1", obj, got)
				}
			}
		})
	}
}

// TestSoloDecidesOwnValue checks the validity corner solo: a process
// running alone must decide its own proposal.
func TestSoloDecidesOwnValue(t *testing.T) {
	for _, im := range append(RegisterUsing(), CAS(2), Sticky(2)) {
		for v := 0; v <= 1; v++ {
			states := im.InitialStates()
			res, err := program.Solo(im, states, 0, types.Propose(v), nil, 100)
			if err != nil {
				t.Fatalf("%s: %v", im.Name, err)
			}
			if res.Resp != types.ValOf(v) {
				t.Errorf("%s: solo propose(%d) decided %v", im.Name, v, res.Resp)
			}
		}
	}
}

func TestAugQueueConsensusScales(t *testing.T) {
	for _, procs := range []int{2, 3} {
		report, err := explore.Consensus(AugQueue(procs), explore.Options{Memoize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK() {
			t.Fatalf("procs=%d: %s\n%v", procs, report.Summary(), report.Violation)
		}
		// enq + peek per process.
		if report.Depth != 2*procs {
			t.Errorf("procs=%d: D = %d, want %d", procs, report.Depth, 2*procs)
		}
	}
}

func TestFetchConsConsensusScales(t *testing.T) {
	for _, procs := range []int{2, 3, 4} {
		report, err := explore.Consensus(FetchCons(procs), explore.Options{Memoize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK() {
			t.Fatalf("procs=%d: %s\n%v", procs, report.Summary(), report.Violation)
		}
		// A single access per process.
		if report.Depth != procs {
			t.Errorf("procs=%d: D = %d, want %d", procs, report.Depth, procs)
		}
	}
}

func TestNoisyStickyConsensus(t *testing.T) {
	// The register-free substrate verifies under every adversary
	// resolution of the unstuck reads.
	report, err := explore.Consensus(NoisySticky2(), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("%s\n%v", report.Summary(), report.Violation)
	}
	// And so does the register-using variant.
	report, err = explore.Consensus(NoisySticky2R(), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("%s\n%v", report.Summary(), report.Violation)
	}
}
