package consensus

import (
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file provides a 3-process register-using protocol, so the Theorem 5
// pipeline is exercised beyond n = 2: processes announce their proposals
// in pairwise SRSW bits, elect a winner ID through one compare-and-swap
// object, and losers read the winner's announcement.

// casIDBottom is the "no winner yet" value of the election object (values
// 0..2 are process ids).
const casIDBottom = 3

// cas3State is the protocol's machine state.
type cas3State struct {
	PC int
	V  int
	W  int // winner id, learned at the election step
}

// annIdx returns the object index of announce[i][j] (written by process i,
// read by process j) in the CASRegister3 object table (the election
// object sits at index 0).
func annIdx(i, j int) int {
	col := j
	if j > i {
		col--
	}
	return 1 + i*2 + col
}

// CASRegister3 builds 3-process binary consensus from one compare-and-swap
// object plus six SRSW announcement bits: process p writes its proposal
// into announce[p][q] for both peers q, installs its ID with
// cas(bottom, p), and — if some other process w won — reads announce[w][p]
// to adopt the winner's proposal.
func CASRegister3() *program.Implementation {
	const procs = 3
	machine := func(p int) program.Machine {
		peers := make([]int, 0, 2)
		for q := 0; q < procs; q++ {
			if q != p {
				peers = append(peers, q)
			}
		}
		return program.FuncMachine{
			StartFn: func(inv types.Invocation, _ any) any {
				return cas3State{PC: 0, V: inv.A}
			},
			NextFn: func(state any, resp types.Response) (program.Action, any) {
				s := state.(cas3State)
				switch s.PC {
				case 0:
					return program.InvokeAction(annIdx(p, peers[0]), types.Write(s.V)),
						cas3State{PC: 1, V: s.V}
				case 1:
					return program.InvokeAction(annIdx(p, peers[1]), types.Write(s.V)),
						cas3State{PC: 2, V: s.V}
				case 2:
					return program.InvokeAction(0, types.Inv(types.OpCAS, casIDBottom, p)),
						cas3State{PC: 3, V: s.V}
				case 3:
					w := resp.Val
					if w == casIDBottom {
						w = p // our cas installed our id
					}
					if w == p {
						return program.ReturnAction(types.ValOf(s.V), nil), s
					}
					return program.InvokeAction(annIdx(w, p), types.Read),
						cas3State{PC: 4, V: s.V, W: w}
				default:
					return program.ReturnAction(types.ValOf(resp.Val), nil), s
				}
			},
		}
	}

	objects := make([]program.ObjectDecl, 0, 7)
	objects = append(objects, program.ObjectDecl{
		Name:   "elect",
		Spec:   types.CompareSwap(procs, 4),
		Init:   casIDBottom,
		PortOf: program.AllPorts(procs),
	})
	for i := 0; i < procs; i++ {
		for j := 0; j < procs; j++ {
			if i == j {
				continue
			}
			objects = append(objects, program.ObjectDecl{
				Name:   "ann" + string(rune('0'+i)) + string(rune('0'+j)),
				Spec:   types.SRSWBit(),
				Init:   0,
				PortOf: program.PairPorts(procs, j, i),
			})
		}
	}
	return &program.Implementation{
		Name:     "cas-register-3consensus",
		Target:   types.Consensus(procs),
		Procs:    procs,
		Objects:  objects,
		Machines: []program.Machine{machine(0), machine(1), machine(2)},
	}
}
