package consensus

import (
	"testing"

	"waitfree/internal/explore"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

func TestCASRegister3Correct(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 3-process exploration")
	}
	im := CASRegister3()
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	report, err := explore.Consensus(im, explore.Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("%s\n%v", report.Summary(), report.Violation)
	}
	// Two announces + cas per process, plus one read for each of the two
	// losers: 3 + 4 + 4.
	if report.Depth != 11 {
		t.Errorf("D = %d, want 11", report.Depth)
	}
	// Every announcement bit: at most one write (by its writer) and one
	// read (by its reader).
	for obj := 1; obj <= 6; obj++ {
		if got := report.OpAccess[obj][types.OpWrite]; got != 1 {
			t.Errorf("obj%d writes = %d, want 1", obj, got)
		}
		if got := report.OpAccess[obj][types.OpRead]; got > 1 {
			t.Errorf("obj%d reads = %d, want <= 1", obj, got)
		}
	}
}

func TestCASRegister3Solo(t *testing.T) {
	im := CASRegister3()
	for p := 0; p < 3; p++ {
		for v := 0; v <= 1; v++ {
			states := im.InitialStates()
			res, err := program.Solo(im, states, p, types.Propose(v), nil, 100)
			if err != nil {
				t.Fatal(err)
			}
			if res.Resp != types.ValOf(v) {
				t.Errorf("solo p%d propose(%d) decided %v", p, v, res.Resp)
			}
			if res.Steps != 3 {
				t.Errorf("solo run took %d steps, want 3 (two announces + cas)", res.Steps)
			}
		}
	}
}

func TestAnnIdxBijective(t *testing.T) {
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			idx := annIdx(i, j)
			if idx < 1 || idx > 6 {
				t.Fatalf("annIdx(%d,%d) = %d out of range", i, j, idx)
			}
			if seen[idx] {
				t.Fatalf("annIdx(%d,%d) = %d collides", i, j, idx)
			}
			seen[idx] = true
		}
	}
}
