// Package consensus is a library of wait-free binary consensus protocols,
// written as implementations over the type zoo (packages types and
// program). These are the canonical protocols of Herlihy's hierarchy that
// Bazzi, Neiger, and Peterson's audience has in mind: each announces its
// proposal in single-reader single-writer bits, elects a winner through one
// read-modify-write object, and adopts the winner's announcement.
//
// The register-using protocols here are the inputs to the Theorem 5
// register-elimination pipeline (package core); the register-free ones
// (compare-and-swap, sticky cell) are what the pipeline's outputs look
// like by construction.
package consensus

import (
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// electionState is the comparable machine state of the announce/elect/
// adopt protocols.
type electionState struct {
	PC int
	V  int
}

// Election describes the winner-election step of a 2-process protocol: the
// spec and initial state of the election object, the invocation each
// process performs on it, and the predicate recognizing the winner's
// response.
type Election struct {
	Name string
	Spec *types.Spec
	Init types.State
	// Inv yields process p's election invocation when proposing v.
	Inv func(p, v int) types.Invocation
	// Won reports whether the election response means process p won.
	Won func(p int, r types.Response) bool
}

// Object indices of the 2-process election protocols.
const (
	electObj   = 0
	prefer0Obj = 1
	prefer1Obj = 2
)

// TwoProcess builds the 2-process announce/elect/adopt consensus
// implementation for the given election: process p writes its proposal to
// its own SRSW prefer bit, performs the election, and decides its own
// proposal if it won or the other's announcement if it lost.
func TwoProcess(e Election) *program.Implementation {
	machine := func(p int) program.Machine {
		own := prefer0Obj + p
		other := prefer0Obj + (1 - p)
		return program.FuncMachine{
			StartFn: func(inv types.Invocation, _ any) any {
				return electionState{PC: 0, V: inv.A}
			},
			NextFn: func(state any, resp types.Response) (program.Action, any) {
				s := state.(electionState)
				switch s.PC {
				case 0:
					return program.InvokeAction(own, types.Write(s.V)), electionState{PC: 1, V: s.V}
				case 1:
					return program.InvokeAction(electObj, e.Inv(p, s.V)), electionState{PC: 2, V: s.V}
				case 2:
					if e.Won(p, resp) {
						return program.ReturnAction(types.ValOf(s.V), nil), s
					}
					return program.InvokeAction(other, types.Read), electionState{PC: 3, V: s.V}
				default:
					return program.ReturnAction(types.ValOf(resp.Val), nil), s
				}
			},
		}
	}
	return &program.Implementation{
		Name:   e.Name,
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "elect", Spec: e.Spec, Init: e.Init, PortOf: program.AllPorts(2)},
			// prefer0 is written by process 0 and read by process 1;
			// prefer1 symmetrically.
			{Name: "prefer0", Spec: types.SRSWBit(), Init: 0, PortOf: program.PairPorts(2, 1, 0)},
			{Name: "prefer1", Spec: types.SRSWBit(), Init: 0, PortOf: program.PairPorts(2, 0, 1)},
		},
		Machines: []program.Machine{machine(0), machine(1)},
	}
}

// TAS2 is 2-process consensus from one test-and-set bit plus two SRSW
// bits: the first test-and-set wins.
func TAS2() *program.Implementation {
	return TwoProcess(Election{
		Name: "tas-2consensus",
		Spec: types.TestAndSet(2),
		Init: 0,
		Inv:  func(_, _ int) types.Invocation { return types.TAS },
		Won:  func(_ int, r types.Response) bool { return r == types.ValOf(0) },
	})
}

// Queue2 is 2-process consensus from one FIFO queue (initialized with a
// single token) plus two SRSW bits: the process that dequeues the token
// wins; the other finds the queue empty.
func Queue2() *program.Implementation {
	return TwoProcess(Election{
		Name: "queue-2consensus",
		Spec: types.Queue(2, 2, 2),
		Init: types.QueueState(1),
		Inv:  func(_, _ int) types.Invocation { return types.Deq },
		Won:  func(_ int, r types.Response) bool { return r == types.ValOf(1) },
	})
}

// Stack2 is 2-process consensus from one stack (initialized with a single
// token) plus two SRSW bits.
func Stack2() *program.Implementation {
	return TwoProcess(Election{
		Name: "stack-2consensus",
		Spec: types.Stack(2, 2, 2),
		Init: types.QueueState(1),
		Inv:  func(_, _ int) types.Invocation { return types.Pop },
		Won:  func(_ int, r types.Response) bool { return r == types.ValOf(1) },
	})
}

// FAA2 is 2-process consensus from one fetch-and-add counter plus two SRSW
// bits: the process that observes 0 when adding 1 wins.
func FAA2() *program.Implementation {
	return TwoProcess(Election{
		Name: "faa-2consensus",
		Spec: types.FetchAdd(2),
		Init: 0,
		Inv:  func(_, _ int) types.Invocation { return types.Inv(types.OpFAA, 1) },
		Won:  func(_ int, r types.Response) bool { return r == types.ValOf(0) },
	})
}

// Swap2 is 2-process consensus from one swap register plus two SRSW bits:
// the process whose swap(1) returns the initial 0 wins.
func Swap2() *program.Implementation {
	return TwoProcess(Election{
		Name: "swap-2consensus",
		Spec: types.Swap(2, 2),
		Init: 0,
		Inv:  func(_, _ int) types.Invocation { return types.Inv(types.OpSwap, 1) },
		Won:  func(_ int, r types.Response) bool { return r == types.ValOf(0) },
	})
}

// WeakLeader2 is 2-process consensus from one nondeterministic WeakLeader
// object plus two SRSW bits, witnessing h_m^r(WeakLeader) >= 2 (Section 6
// context: Jayanti's separation of h_m from h_m^r needs such a
// nondeterministic type).
//
// Because the adversary chooses which of the object's first two accesses
// wins, a process that accesses the object once can lose before the
// eventual winner has announced anything (the naive announce/elect/adopt
// pattern is incorrect here — the execution-tree explorer exhibits the
// counterexample). Instead each process accesses the object twice:
//
//   - Exactly one of the first two accesses overall wins, so exactly one
//     process ever sees a win: a unique leader is always elected.
//   - A process that loses both its accesses made the second of them as
//     access #3 or later, so the winner's winning access — which is among
//     accesses #1-#2 and is preceded by the winner's announcement —
//     happened strictly earlier. The loser therefore reliably reads the
//     winner's announcement.
func WeakLeader2() *program.Implementation {
	machine := func(p int) program.Machine {
		own := prefer0Obj + p
		other := prefer0Obj + (1 - p)
		return program.FuncMachine{
			StartFn: func(inv types.Invocation, _ any) any {
				return electionState{PC: 0, V: inv.A}
			},
			NextFn: func(state any, resp types.Response) (program.Action, any) {
				s := state.(electionState)
				switch s.PC {
				case 0:
					return program.InvokeAction(own, types.Write(s.V)), electionState{PC: 1, V: s.V}
				case 1:
					return program.InvokeAction(electObj, types.TAS), electionState{PC: 2, V: s.V}
				case 2:
					if resp.Label == types.LabelWin {
						return program.ReturnAction(types.ValOf(s.V), nil), s
					}
					return program.InvokeAction(electObj, types.TAS), electionState{PC: 3, V: s.V}
				case 3:
					if resp.Label == types.LabelWin {
						return program.ReturnAction(types.ValOf(s.V), nil), s
					}
					return program.InvokeAction(other, types.Read), electionState{PC: 4, V: s.V}
				default:
					return program.ReturnAction(types.ValOf(resp.Val), nil), s
				}
			},
		}
	}
	return &program.Implementation{
		Name:   "weakleader-2consensus",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "elect", Spec: types.WeakLeader(2), Init: 0, PortOf: program.AllPorts(2)},
			{Name: "prefer0", Spec: types.SRSWBit(), Init: 0, PortOf: program.PairPorts(2, 1, 0)},
			{Name: "prefer1", Spec: types.SRSWBit(), Init: 0, PortOf: program.PairPorts(2, 0, 1)},
		},
		Machines: []program.Machine{machine(0), machine(1)},
	}
}

// casState is the machine state of the CAS protocol.
type casState struct {
	PC int
	V  int
}

// casBottom is the "undecided" value of the CAS protocol's object.
const casBottom = 2

// CAS builds register-free n-process consensus from a single
// compare-and-swap object: cas(bottom, v) and decide the object's first
// installed value.
func CAS(procs int) *program.Implementation {
	machine := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any {
			return casState{PC: 0, V: inv.A}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(casState)
			if s.PC == 0 {
				return program.InvokeAction(0, types.Inv(types.OpCAS, casBottom, s.V)), casState{PC: 1, V: s.V}
			}
			if resp.Val == casBottom {
				return program.ReturnAction(types.ValOf(s.V), nil), s
			}
			return program.ReturnAction(types.ValOf(resp.Val), nil), s
		},
	}
	machines := make([]program.Machine, procs)
	for p := range machines {
		machines[p] = machine
	}
	return &program.Implementation{
		Name:           "cas-consensus",
		Target:         types.Consensus(procs),
		Procs:          procs,
		SymmetricProcs: true,
		Objects: []program.ObjectDecl{{
			Name:   "cas",
			Spec:   types.CompareSwap(procs, 3),
			Init:   casBottom,
			PortOf: program.AllPorts(procs),
		}},
		Machines: machines,
	}
}

// Sticky builds register-free n-process consensus from a single sticky
// cell: stick the proposal, then read the cell's fixed value.
func Sticky(procs int) *program.Implementation {
	machine := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any {
			return casState{PC: 0, V: inv.A}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(casState)
			switch s.PC {
			case 0:
				return program.InvokeAction(0, types.Inv(types.OpStick, s.V)), casState{PC: 1, V: s.V}
			case 1:
				return program.InvokeAction(0, types.Read), casState{PC: 2, V: s.V}
			default:
				return program.ReturnAction(types.ValOf(resp.Val), nil), s
			}
		},
	}
	machines := make([]program.Machine, procs)
	for p := range machines {
		machines[p] = machine
	}
	return &program.Implementation{
		Name:           "sticky-consensus",
		Target:         types.Consensus(procs),
		Procs:          procs,
		SymmetricProcs: true,
		Objects: []program.ObjectDecl{{
			Name:   "sticky",
			Spec:   types.StickyCell(procs, 2),
			Init:   types.StickyUnset,
			PortOf: program.AllPorts(procs),
		}},
		Machines: machines,
	}
}

// AugQueue builds register-free n-process consensus from a single
// augmented (peekable) queue: enqueue the proposal, then peek — the first
// enqueued proposal is every process's decision (Herlihy's consensus-
// number-infinity example).
func AugQueue(procs int) *program.Implementation {
	machine := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any {
			return casState{PC: 0, V: inv.A}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(casState)
			switch s.PC {
			case 0:
				return program.InvokeAction(0, types.Enq(s.V)), casState{PC: 1, V: s.V}
			case 1:
				return program.InvokeAction(0, types.Peek), casState{PC: 2, V: s.V}
			default:
				return program.ReturnAction(types.ValOf(resp.Val), nil), s
			}
		},
	}
	machines := make([]program.Machine, procs)
	for p := range machines {
		machines[p] = machine
	}
	return &program.Implementation{
		Name:           "augqueue-consensus",
		Target:         types.Consensus(procs),
		Procs:          procs,
		SymmetricProcs: true,
		Objects: []program.ObjectDecl{{
			Name:   "augq",
			Spec:   types.AugmentedQueue(procs, 2, procs),
			Init:   types.QueueState(),
			PortOf: program.AllPorts(procs),
		}},
		Machines: machines,
	}
}

// NaiveRegister2 is a deliberately incorrect 2-process protocol over
// registers only (announce, read the other, decide the minimum announced
// value). Registers cannot solve 2-process consensus (FLP/LA/CIL, cited in
// the paper's Theorem 5 proof); the explorer exhibits the agreement
// violation. It is used by tests, examples, and documentation.
func NaiveRegister2() *program.Implementation {
	machine := func(p int) program.Machine {
		own := p
		other := 1 - p
		return program.FuncMachine{
			StartFn: func(inv types.Invocation, _ any) any {
				return electionState{PC: 0, V: inv.A}
			},
			NextFn: func(state any, resp types.Response) (program.Action, any) {
				s := state.(electionState)
				switch s.PC {
				case 0:
					// Announce proposal+1 (0 means "no announcement yet").
					return program.InvokeAction(own, types.Write(s.V+1)), electionState{PC: 1, V: s.V}
				case 1:
					return program.InvokeAction(other, types.Read), electionState{PC: 2, V: s.V}
				default:
					if resp.Val == 0 {
						// Other process not announced: decide own value.
						return program.ReturnAction(types.ValOf(s.V), nil), s
					}
					otherV := resp.Val - 1
					if otherV < s.V {
						return program.ReturnAction(types.ValOf(otherV), nil), s
					}
					return program.ReturnAction(types.ValOf(s.V), nil), s
				}
			},
		}
	}
	return &program.Implementation{
		Name:   "naive-register-2consensus",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "ann0", Spec: types.Register(2, 3), Init: 0, PortOf: program.AllPorts(2)},
			{Name: "ann1", Spec: types.Register(2, 3), Init: 0, PortOf: program.AllPorts(2)},
		},
		Machines: []program.Machine{machine(0), machine(1)},
	}
}

// RegisterUsing lists the 2-process protocols that use SRSW-bit registers
// alongside one election object: the inputs of the Theorem 5 pipeline.
func RegisterUsing() []*program.Implementation {
	return []*program.Implementation{TAS2(), Queue2(), Stack2(), FAA2(), Swap2()}
}

// Corpus lists one instance of every built-in protocol at small sizes (2
// and 3 processes) — the seed set for cross-cutting explorer tests. All
// are correct except NaiveRegister2, which is included deliberately so
// checkers are exercised on a violating implementation too.
func Corpus() []*program.Implementation {
	return []*program.Implementation{
		TAS2(), Queue2(), Stack2(), FAA2(), Swap2(), WeakLeader2(),
		NoisySticky2(), NoisySticky2R(), NaiveRegister2(),
		CAS(2), Sticky(2), AugQueue(2), FetchCons(2),
		CAS(3), Sticky(3),
		CASRegister3(),
	}
}

// FetchCons builds register-free n-process consensus from a single
// fetch-and-cons object, with ONE access per process: cons the proposal;
// if the previous list was empty you were first (decide your own value),
// otherwise the first-ever consed element — the tail of the returned
// list — is the winner's proposal.
func FetchCons(procs int) *program.Implementation {
	machine := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any {
			return casState{PC: 0, V: inv.A}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(casState)
			if s.PC == 0 {
				return program.InvokeAction(0, types.Cons(s.V)), casState{PC: 1, V: s.V}
			}
			prev := types.DecodeList(resp.Val)
			if len(prev) == 0 {
				return program.ReturnAction(types.ValOf(s.V), nil), s
			}
			return program.ReturnAction(types.ValOf(prev[len(prev)-1]), nil), s
		},
	}
	machines := make([]program.Machine, procs)
	for p := range machines {
		machines[p] = machine
	}
	return &program.Implementation{
		Name:           "fetchcons-consensus",
		Target:         types.Consensus(procs),
		Procs:          procs,
		SymmetricProcs: true,
		Objects: []program.ObjectDecl{{
			Name:   "list",
			Spec:   types.FetchAndCons(procs, 2, procs),
			Init:   "",
			PortOf: program.AllPorts(procs),
		}},
		Machines: machines,
	}
}

// NoisySticky2 builds register-free 2-process consensus from a single
// NONDETERMINISTIC noisy-sticky cell: stick the proposal, then read — the
// cell is faithful once stuck, so the adversarial unstuck reads are never
// exercised. It witnesses h_m(NoisySticky) >= 2 and is the substrate for
// the Theorem 5 third-case pipeline (Section 5.3).
func NoisySticky2() *program.Implementation {
	machine := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any {
			return casState{PC: 0, V: inv.A}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(casState)
			switch s.PC {
			case 0:
				return program.InvokeAction(0, types.Inv(types.OpStick, s.V)), casState{PC: 1, V: s.V}
			case 1:
				return program.InvokeAction(0, types.Read), casState{PC: 2, V: s.V}
			default:
				return program.ReturnAction(types.ValOf(resp.Val), nil), s
			}
		},
	}
	return &program.Implementation{
		Name:           "noisysticky-consensus",
		Target:         types.Consensus(2),
		Procs:          2,
		SymmetricProcs: true,
		Objects: []program.ObjectDecl{{
			Name:   "noisy",
			Spec:   types.NoisySticky(2, 2),
			Init:   types.StickyUnset,
			PortOf: program.AllPorts(2),
		}},
		Machines: []program.Machine{machine, machine},
	}
}

// NoisySticky2R is an (artificially) register-using 2-process consensus
// protocol over the nondeterministic noisy-sticky type: the usual
// announce/elect/adopt shape with the sticky election. It is the input for
// demonstrating the Theorem 5 pipeline's h_m >= 2 route: its registers are
// eliminated via one-use bits realized from the REGISTER-FREE NoisySticky2
// consensus substrate (Section 5.3), since the type's nondeterminism rules
// out the Section 5.2 witness machinery.
func NoisySticky2R() *program.Implementation {
	machine := func(p int) program.Machine {
		own := prefer0Obj + p
		other := prefer0Obj + (1 - p)
		return program.FuncMachine{
			StartFn: func(inv types.Invocation, _ any) any {
				return electionState{PC: 0, V: inv.A}
			},
			NextFn: func(state any, resp types.Response) (program.Action, any) {
				s := state.(electionState)
				switch s.PC {
				case 0:
					return program.InvokeAction(own, types.Write(s.V)), electionState{PC: 1, V: s.V}
				case 1:
					// Stick own id to elect a winner.
					return program.InvokeAction(electObj, types.Inv(types.OpStick, p)), electionState{PC: 2, V: s.V}
				case 2:
					return program.InvokeAction(electObj, types.Read), electionState{PC: 3, V: s.V}
				case 3:
					if resp.Val == p { // we won the election
						return program.ReturnAction(types.ValOf(s.V), nil), s
					}
					return program.InvokeAction(other, types.Read), electionState{PC: 4, V: s.V}
				default:
					return program.ReturnAction(types.ValOf(resp.Val), nil), s
				}
			},
		}
	}
	return &program.Implementation{
		Name:   "noisysticky-2consensus-r",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "elect", Spec: types.NoisySticky(2, 2), Init: types.StickyUnset, PortOf: program.AllPorts(2)},
			{Name: "prefer0", Spec: types.SRSWBit(), Init: 0, PortOf: program.PairPorts(2, 1, 0)},
			{Name: "prefer1", Spec: types.SRSWBit(), Init: 0, PortOf: program.PairPorts(2, 0, 1)},
		},
		Machines: []program.Machine{machine(0), machine(1)},
	}
}
