package waitfree_test

import (
	"strings"
	"testing"

	"waitfree"
)

// The tests in this file exercise the public facade exactly as a
// downstream user would; deep behavior is tested in the internal packages.

func TestFacadeEliminateRegisters(t *testing.T) {
	report, err := waitfree.EliminateRegisters(
		waitfree.TAS2Consensus(), waitfree.ExploreOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OutputReport.OK() {
		t.Fatal(report.OutputReport.Summary())
	}
	if !strings.Contains(report.Summary(), "ok=true") {
		t.Errorf("summary: %s", report.Summary())
	}
}

func TestFacadeCheckConsensus(t *testing.T) {
	good, err := waitfree.CheckConsensus(waitfree.CASConsensus(2), waitfree.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !good.OK() {
		t.Fatal(good.Summary())
	}
	bad, err := waitfree.CheckConsensus(waitfree.NaiveRegisterConsensus(), waitfree.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bad.OK() {
		t.Fatal("register-only protocol accepted")
	}
}

func TestFacadeCheckConsensusK(t *testing.T) {
	report, err := waitfree.CheckConsensusK(
		waitfree.MultiValuedConsensus(2, 3), 3, waitfree.ExploreOptions{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatal(report.Summary())
	}
	if report.Roots != 9 {
		t.Errorf("roots = %d, want 9", report.Roots)
	}
}

func TestFacadeCustomType(t *testing.T) {
	flag := &waitfree.Spec{
		Name:          "flag",
		Ports:         2,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      []waitfree.Invocation{waitfree.Inv("raise"), waitfree.Inv("check")},
		Step: func(q waitfree.State, _ int, inv waitfree.Invocation) []waitfree.Transition {
			b, ok := q.(int)
			if !ok {
				return nil
			}
			switch inv.Op {
			case "raise":
				return []waitfree.Transition{{Next: 1, Resp: waitfree.OK}}
			case "check":
				return []waitfree.Transition{{Next: b, Resp: waitfree.ValOf(b)}}
			}
			return nil
		},
	}
	trivial, err := waitfree.IsTrivial(flag, []waitfree.State{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if trivial {
		t.Fatal("flag type misclassified as trivial")
	}
	im, pair, err := waitfree.OneUseBitFromType(flag, []waitfree.State{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pair.K() != 1 {
		t.Errorf("witness k = %d, want 1", pair.K())
	}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeValency(t *testing.T) {
	report, err := waitfree.ComputeValency(
		waitfree.TAS2Consensus(), []int{0, 1}, waitfree.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.InitialBivalent || len(report.Critical) == 0 {
		t.Fatalf("unexpected valency report: %+v", report)
	}
}

func TestFacadeZoo(t *testing.T) {
	cs, err := waitfree.ClassifyZoo()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) < 18 {
		t.Errorf("zoo size = %d", len(cs))
	}
}

func TestFacadeBoundedBit(t *testing.T) {
	b := waitfree.NewBoundedBit(4, 3, 1)
	v, err := b.Read()
	if err != nil || v != 1 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if err := b.Write(0); err != nil {
		t.Fatal(err)
	}
	v, err = b.Read()
	if err != nil || v != 0 {
		t.Fatalf("read after write = %d, %v", v, err)
	}
}

func TestFacadeUniversal(t *testing.T) {
	u, err := waitfree.NewUniversal(waitfree.NewFetchAdd(2), 0, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	r, err := u.Apply(0, waitfree.Inv("faa", 1))
	if err != nil || r != waitfree.ValOf(0) {
		t.Fatalf("faa = %v, %v", r, err)
	}
	r, err = u.Apply(1, waitfree.Inv("faa", 0))
	if err != nil || r != waitfree.ValOf(1) {
		t.Fatalf("faa(0) = %v, %v", r, err)
	}
}

func TestFacadeExportDot(t *testing.T) {
	scripts := [][]waitfree.Invocation{
		{waitfree.Propose(0)}, {waitfree.Propose(1)},
	}
	dot, err := waitfree.ExportDot(waitfree.CASConsensus(2), scripts, waitfree.ExploreOptions{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph") {
		t.Errorf("dot output: %q", dot)
	}
}

func TestFacadeAuditSpec(t *testing.T) {
	if err := waitfree.AuditSpec(waitfree.NewTestAndSet(2), 0, 32); err != nil {
		t.Fatal(err)
	}
	lying := waitfree.NewOneUseBit()
	lying.Deterministic = true
	if err := waitfree.AuditSpec(lying, "unset", 32); err == nil {
		t.Fatal("lying spec passed the audit")
	}
}

func TestFacadeVia53(t *testing.T) {
	report, err := waitfree.EliminateRegistersVia53(
		waitfree.NoisySticky2RConsensus(), waitfree.NoisySticky2Consensus(), waitfree.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OutputReport.OK() {
		t.Fatal(report.OutputReport.Summary())
	}
}

func TestFacadeFetchCons(t *testing.T) {
	report, err := waitfree.CheckConsensus(waitfree.FetchConsConsensus(3), waitfree.ExploreOptions{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() || report.Depth != 3 {
		t.Fatal(report.Summary())
	}
}

func TestFacadeSynthesis(t *testing.T) {
	objects := []waitfree.SynthObject{{Name: "cas", Spec: waitfree.NewCompareSwap(2, 3), Init: 2}}
	st, _, err := waitfree.SynthesizeProtocol(objects, waitfree.SynthOptions{Depth: 1, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	im := waitfree.StrategyImplementation("t", objects, st, waitfree.SynthOptions{Symmetric: true})
	report, err := waitfree.CheckConsensus(im, waitfree.ExploreOptions{})
	if err != nil || !report.OK() {
		t.Fatalf("%v %v", err, report)
	}
}
