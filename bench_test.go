// Benchmarks regenerating the measurements of EXPERIMENTS.md: one
// benchmark family per experiment (E1-E9) plus the ablations called out in
// DESIGN.md. The paper is pure theory and reports no absolute numbers; the
// quantities of interest are the cost *shapes* (how work scales with r, w,
// process count, and protocol size), which these benchmarks expose via
// sub-benchmark sweeps and ReportMetric.
package waitfree_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"waitfree/internal/consensus"
	"waitfree/internal/core"
	"waitfree/internal/durable"
	"waitfree/internal/explore"
	"waitfree/internal/faults"
	"waitfree/internal/hierarchy"
	"waitfree/internal/multivalue"
	"waitfree/internal/onebit"
	"waitfree/internal/program"
	"waitfree/internal/registers"
	"waitfree/internal/synth"
	"waitfree/internal/types"
	"waitfree/internal/universal"
)

// ---- E1: Section 4.3 one-use bit array ----

// BenchmarkOneUseBitArray measures one write+read pair on the direct
// construction across array sizes: cost grows linearly in r (writes flip a
// whole row) — the paper's r*(w+1) space bound made visible as time.
func BenchmarkOneUseBitArray(b *testing.B) {
	for _, size := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("r=w=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bit := onebit.NewBoundedBit(size, size, 0)
				for k := 0; k < size; k++ {
					if err := bit.Write(1 - k%2); err != nil {
						b.Fatal(err)
					}
					if _, err := bit.Read(); err != nil {
						b.Fatal(err)
					}
				}
				if i == 0 {
					b.ReportMetric(float64(bit.Bits()), "one-use-bits")
				}
			}
		})
	}
}

// BenchmarkBitArrayScan is the DESIGN.md ablation: the paper's resuming
// row scan versus a reader that rescans from row 1 on every read.
func BenchmarkBitArrayScan(b *testing.B) {
	const size = 128
	variants := map[string]func() *onebit.BoundedBit{
		"resume":  func() *onebit.BoundedBit { return onebit.NewBoundedBit(size, size, 0) },
		"restart": func() *onebit.BoundedBit { return onebit.NewBoundedBitRestartScan(size, size, 0) },
	}
	for name, mk := range variants {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bit := mk()
				for k := 0; k < size; k++ {
					if err := bit.Write(1 - k%2); err != nil {
						b.Fatal(err)
					}
					if _, err := bit.Read(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---- E2: Section 4.1 register chain ----

// BenchmarkRegisterChain measures single operations at each layer of the
// chain, bottom to top: costs grow with fan-out (readers/writers), the
// price of wait-freedom from weak cells.
func BenchmarkRegisterChain(b *testing.B) {
	b.Run("atomic-bit", func(b *testing.B) {
		bit := registers.NewAtomicBit(0)
		for i := 0; i < b.N; i++ {
			bit.Write(i & 1)
			_ = bit.Read()
		}
	})
	b.Run("lamport-mrbit/readers=8", func(b *testing.B) {
		reg := registers.NewLamportMRBit(8, 0, func(init int) registers.Bit { return registers.NewAtomicBit(init) })
		for i := 0; i < b.N; i++ {
			reg.Write(i & 1)
			_ = reg.Read(i % 8)
		}
	})
	for _, k := range []int{4, 16} {
		b.Run(fmt.Sprintf("vidyasankar/k=%d", k), func(b *testing.B) {
			reg := registers.NewVidyasankar(k, 0, func(init int) registers.Bit { return registers.NewAtomicBit(init) })
			for i := 0; i < b.N; i++ {
				reg.Write(i % k)
				_ = reg.Read()
			}
		})
	}
	for _, readers := range []int{2, 8} {
		b.Run(fmt.Sprintf("mrsw-atomic/readers=%d", readers), func(b *testing.B) {
			reg := registers.NewMRSWAtomic(readers, 0)
			for i := 0; i < b.N; i++ {
				reg.Write(i)
				_ = reg.Read(i % readers)
			}
		})
	}
	for _, parties := range []int{2, 4} {
		b.Run(fmt.Sprintf("mrmw-atomic/w=r=%d", parties), func(b *testing.B) {
			reg := registers.NewMRMWAtomic(parties, parties, 0)
			for i := 0; i < b.N; i++ {
				reg.Write(i%parties, i)
				_ = reg.Read(i % parties)
			}
		})
	}
}

// ---- E3: Section 4.2 access-bound computation ----

// BenchmarkAccessBound measures the execution-tree exploration that yields
// the bound D, per protocol; nodes/op exposes tree size.
func BenchmarkAccessBound(b *testing.B) {
	protos := map[string]func() *program.Implementation{
		"tas2":   consensus.TAS2,
		"queue2": consensus.Queue2,
		"faa2":   consensus.FAA2,
		"cas3":   func() *program.Implementation { return consensus.CAS(3) },
		"cas4":   func() *program.Implementation { return consensus.CAS(4) },
	}
	for name, mk := range protos {
		b.Run(name, func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				report, err := explore.Consensus(mk(), explore.Options{})
				if err != nil {
					b.Fatal(err)
				}
				nodes = report.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkExplorerMemoization is the DESIGN.md ablation: configuration
// deduplication on versus off, on a protocol with heavy path convergence.
func BenchmarkExplorerMemoization(b *testing.B) {
	for _, memo := range []bool{false, true} {
		b.Run(fmt.Sprintf("memoize=%v", memo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := explore.Consensus(consensus.CAS(4), explore.Options{Memoize: memo}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExplorerParallel sweeps Options.Parallelism on a protocol with
// many proposal-vector trees (CAS(4): 16 roots). On multi-core machines
// the trees spread across workers; the report is identical at every
// setting, so the sweep directly exposes the parallel speedup.
func BenchmarkExplorerParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				report, err := explore.Consensus(consensus.CAS(4), explore.Options{Memoize: true, Parallelism: workers})
				if err != nil {
					b.Fatal(err)
				}
				if !report.OK() {
					b.Fatal(report.Summary())
				}
			}
		})
	}
}

// BenchmarkConsensusSymmetry sweeps symmetry reduction across process
// counts on the register-free n-process protocols: 2^n trees collapse to
// n+1 orbits, so the off/auto ratio approaches n!/(n+1)-fold less tree
// work as n grows. The report is byte-identical at every setting (pinned
// by TestSymmetryParityCorpus); the sweep exposes the saved time.
func BenchmarkConsensusSymmetry(b *testing.B) {
	protocols := []struct {
		name string
		mk   func(int) *program.Implementation
	}{
		{"sticky", consensus.Sticky},
		{"cas", consensus.CAS},
	}
	for _, pc := range protocols {
		name, mk := pc.name, pc.mk
		for _, procs := range []int{3, 4, 5} {
			for _, mode := range []explore.SymmetryMode{explore.SymmetryOff, explore.SymmetryAuto} {
				b.Run(fmt.Sprintf("%s/n=%d/symmetry=%v", name, procs, mode), func(b *testing.B) {
					im := mk(procs)
					var nodes int64
					for i := 0; i < b.N; i++ {
						report, err := explore.Consensus(im, explore.Options{Memoize: true, Symmetry: mode})
						if err != nil {
							b.Fatal(err)
						}
						if !report.OK() {
							b.Fatal(report.Summary())
						}
						nodes = report.Stats.Nodes
					}
					b.ReportMetric(float64(nodes), "explored-nodes")
				})
			}
		}
	}
}

// BenchmarkConsensusFaults measures the fault-exploration hot path, which
// takes the crash/recovery expansion branches the plain sweep never
// exercises: TAS2 under crash-recovery (test-and-set has consensus number
// 2, so n=2 is its ceiling — the paper's hierarchy made concrete) and the
// augmented queue under crash-stop.
func BenchmarkConsensusFaults(b *testing.B) {
	cases := []struct {
		name  string
		mk    func() *program.Implementation
		model faults.Model
	}{
		{"tas2/crashrecovery", consensus.TAS2, faults.Model{Mode: faults.CrashRecovery, MaxCrashes: 1, MaxRecoveries: 1}},
		{"queue2/crashstop", consensus.Queue2, faults.Model{Mode: faults.CrashStop, MaxCrashes: 1}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			im := c.mk()
			var nodes int64
			for i := 0; i < b.N; i++ {
				report, err := explore.Consensus(im, explore.Options{Memoize: true, Faults: c.model})
				if err != nil {
					b.Fatal(err)
				}
				if !report.OK() {
					b.Fatal(report.Summary())
				}
				nodes = report.Stats.Nodes
			}
			b.ReportMetric(float64(nodes), "explored-nodes")
		})
	}
}

// BenchmarkConsensusAutosave measures the durable-autosave overhead on
// sticky n=4: the same exploration with periodic checksummed checkpoint
// writes off, at 5s, and at 1s. The supervisor ticker and heartbeat
// bookkeeping are the only added work on this run length (the intervals
// never elapse), so the measured overhead pins the steady-state cost of
// arming -checkpoint-every: under 2% even at the 1s interval.
func BenchmarkConsensusAutosave(b *testing.B) {
	intervals := []struct {
		name  string
		every time.Duration
	}{
		{"off", 0},
		{"every=5s", 5 * time.Second},
		{"every=1s", time.Second},
	}
	for _, iv := range intervals {
		b.Run(iv.name, func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "cp")
			opts := explore.Options{Memoize: true}
			if iv.every > 0 {
				opts.CheckpointEvery = iv.every
				opts.OnCheckpoint = func(cp *explore.Checkpoint) {
					if err := durable.Save(path, cp); err != nil {
						b.Error(err)
					}
				}
			}
			im := consensus.Sticky(4)
			for i := 0; i < b.N; i++ {
				report, err := explore.Consensus(im, opts)
				if err != nil {
					b.Fatal(err)
				}
				if !report.OK() {
					b.Fatal(report.Summary())
				}
			}
		})
	}
}

// ---- E4: Section 5.1/5.2 witness search ----

func BenchmarkWitnessSearch(b *testing.B) {
	cases := []struct {
		name  string
		spec  *types.Spec
		inits []types.State
	}{
		{"tas", types.TestAndSet(2), []types.State{0}},
		{"queue", types.Queue(2, 2, 3), []types.State{types.QueueState()}},
		{"cas", types.CompareSwap(2, 3), []types.State{2}},
		{"latch-flag(k=2)", types.LatchFlag(), []types.State{types.LatchFlagInit()}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hierarchy.FindPair(tc.spec, tc.inits, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E5: Section 5.3 one-use bit from consensus ----

func BenchmarkOneUseFromConsensus(b *testing.B) {
	im, err := onebit.FromConsensusImplementation(consensus.CAS(2))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("solo-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			states := im.InitialStates()
			if _, err := program.Solo(im, states, 0, types.Read, nil, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("explore-all-interleavings", func(b *testing.B) {
		scripts := [][]types.Invocation{{types.Read}, {types.Write(1)}}
		for i := 0; i < b.N; i++ {
			res, err := explore.Run(im, scripts, explore.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Violation != nil {
				b.Fatal(res.Violation)
			}
		}
	})
}

// BenchmarkOneUseRealizations is the DESIGN.md ablation: the three ways to
// realize a one-use bit — Section 5.1/5.2 witnesses of different sequence
// lengths and the Section 5.3 consensus route — compared by solo read
// cost (object accesses are the explorer's step currency; here: time).
func BenchmarkOneUseRealizations(b *testing.B) {
	mk := map[string]func() (*program.Implementation, error){
		"5.2-tas-k1": func() (*program.Implementation, error) {
			im, _, err := onebit.FromType(types.TestAndSet(2), []types.State{0}, 3)
			return im, err
		},
		"5.2-latchflag-k2": func() (*program.Implementation, error) {
			im, _, err := onebit.FromType(types.LatchFlag(), []types.State{types.LatchFlagInit()}, 3)
			return im, err
		},
		"5.3-cas-consensus": func() (*program.Implementation, error) {
			return onebit.FromConsensusImplementation(consensus.CAS(2))
		},
	}
	for name, make := range mk {
		b.Run(name, func(b *testing.B) {
			im, err := make()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				states := im.InitialStates()
				if _, err := program.Solo(im, states, 0, types.Read, nil, 100); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E6: Theorem 5 register elimination ----

func BenchmarkEliminate(b *testing.B) {
	protos := map[string]func() *program.Implementation{
		"tas2":   consensus.TAS2,
		"queue2": consensus.Queue2,
		"faa2":   consensus.FAA2,
		"swap2":  consensus.Swap2,
	}
	for name, mkP := range protos {
		b.Run(name, func(b *testing.B) {
			var outDepth int
			for i := 0; i < b.N; i++ {
				report, err := core.EliminateRegisters(mkP(), explore.Options{}, 3)
				if err != nil {
					b.Fatal(err)
				}
				outDepth = report.OutputReport.Depth
			}
			b.ReportMetric(float64(outDepth), "outputD")
		})
	}
}

// ---- E7: hierarchy equality across the zoo ----

func BenchmarkHierarchyEquality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.ClassifyZoo(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E8: nondeterministic adversary exploration ----

func BenchmarkNondetAdversary(b *testing.B) {
	var nodes int64
	for i := 0; i < b.N; i++ {
		report, err := explore.Consensus(consensus.WeakLeader2(), explore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !report.OK() {
			b.Fatal(report.Summary())
		}
		nodes = report.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// ---- E9: universal construction ----

func BenchmarkUniversal(b *testing.B) {
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("counter/procs=%d", procs), func(b *testing.B) {
			// b.N operations total, split across procs goroutines, each
			// owning one process slot of the construction.
			each := b.N/procs + 1
			u, err := universal.New(types.FetchAdd(procs), 0, procs, each*procs+procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for p := 0; p < procs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						if _, err := u.Apply(p, types.Inv(types.OpFAA, 1)); err != nil {
							b.Error(err)
							return
						}
					}
				}(p)
			}
			wg.Wait()
		})
	}
}

// ---- E10: multi-valued consensus ----

// BenchmarkMultiValued measures the bit-by-bit construction's exploration
// cost as k grows (roots scale as k^2, machine length as log k).
func BenchmarkMultiValued(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("check/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				report, err := explore.ConsensusK(multivalue.FromBinary(2, k), k, explore.Options{Memoize: true})
				if err != nil {
					b.Fatal(err)
				}
				if !report.OK() {
					b.Fatal(report.Summary())
				}
			}
		})
	}
	b.Run("eliminate/k=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EliminateRegisters(multivalue.FromBinarySRSW(4), explore.Options{Memoize: true}, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkValency measures the FLP valency analysis per protocol.
func BenchmarkValency(b *testing.B) {
	protos := map[string]func() *program.Implementation{
		"tas2": consensus.TAS2,
		"cas3": func() *program.Implementation { return consensus.CAS(3) },
	}
	for name, mk := range protos {
		b.Run(name, func(b *testing.B) {
			im := mk()
			proposals := make([]int, im.Procs)
			for p := range proposals {
				proposals[p] = p % 2
			}
			for i := 0; i < b.N; i++ {
				if _, err := explore.Valency(im, proposals, explore.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E11: protocol synthesis ----

// BenchmarkSynth measures bounded synthesis: positive cases (protocol
// found) are fast; negative cases pay for exhausting the space.
func BenchmarkSynth(b *testing.B) {
	b.Run("find/cas", func(b *testing.B) {
		objects := []synth.Object{{Name: "cas", Spec: types.CompareSwap(2, 3), Init: 2}}
		for i := 0; i < b.N; i++ {
			if _, _, err := synth.Search(objects, synth.Options{Depth: 1, Symmetric: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("find/augqueue", func(b *testing.B) {
		objects := []synth.Object{{Name: "aq", Spec: types.AugmentedQueue(2, 2, 2), Init: types.QueueState()}}
		for i := 0; i < b.N; i++ {
			if _, _, err := synth.Search(objects, synth.Options{Depth: 2, Symmetric: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refute/tas-alone", func(b *testing.B) {
		objects := []synth.Object{{Name: "tas", Spec: types.TestAndSet(2), Init: 0}}
		for i := 0; i < b.N; i++ {
			_, _, err := synth.Search(objects, synth.Options{Depth: 3, Budget: 1e9})
			if !errors.Is(err, synth.ErrNoProtocol) {
				b.Fatal(err)
			}
		}
	})
}
