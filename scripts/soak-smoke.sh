#!/usr/bin/env bash
# Soak smoke: prove the durable-runs loop end to end on a real process.
#
# An exploration with -checkpoint-every autosaves its resumable state on a
# timer (checksummed, atomically renamed). This script starts such a run,
# SIGKILLs it mid-flight — no signal handler, no cleanup, the worst case —
# resumes from whatever the autosave left behind, and asserts the resumed
# run's report is identical to an uninterrupted run's (modulo wall-clock
# and engine-throughput fields, which legitimately differ).
#
# Requires: go, jq.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/explore" ./cmd/explore

# A workload long enough to straddle several 1s autosave intervals:
# sticky-cell consensus for 5 processes with exhaustive crash-start faults
# (~5s single-core).
args=(-protocol sticky -procs 5 -faults -fault-mode crash-start -json)

echo "soak-smoke: uninterrupted reference run"
"$work/explore" "${args[@]}" > "$work/reference.json"

echo "soak-smoke: same run with -checkpoint-every 1s, SIGKILL after the first autosave"
"$work/explore" "${args[@]}" -checkpoint "$work/cp" -checkpoint-every 1s > "$work/killed.json" &
pid=$!
# Wait for the first autosaved checkpoint to appear (rename is atomic, so a
# non-empty file is a complete one), then kill without ceremony. The loop
# also notices if the run finishes before any autosave — that would mean
# the workload is too small to exercise the kill path.
for _ in $(seq 1 100); do
	kill -0 "$pid" 2>/dev/null || break
	[ -s "$work/cp" ] && break
	sleep 0.1
done
if ! kill -0 "$pid" 2>/dev/null; then
	echo "soak-smoke: run finished before the first autosave; enlarge the workload" >&2
	exit 1
fi
sleep 1 # let a second interval land mid-run for good measure
kill -KILL "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

[ -s "$work/cp" ] || { echo "soak-smoke: no autosaved checkpoint survived the kill" >&2; exit 1; }

echo "soak-smoke: resuming from the autosaved checkpoint"
"$work/explore" "${args[@]}" -checkpoint "$work/cp" -checkpoint-every 1s > "$work/resumed.json"

strip='del(.elapsed_ns, .consensus.stats)'
if ! diff <(jq -S "$strip" "$work/reference.json") <(jq -S "$strip" "$work/resumed.json"); then
	echo "soak-smoke: FAIL — resumed report differs from the uninterrupted run" >&2
	exit 1
fi
echo "soak-smoke: OK — resumed report is identical to the uninterrupted run"
