// Command benchreg is the CI allocation-regression gate. It runs the
// BenchmarkConsensus* suite with -benchmem, compares allocs/op per
// benchmark against a committed baseline JSON, fails (exit 1) when any
// benchmark regresses by more than the threshold, and writes the fresh
// numbers to -out so every CI run leaves a BENCH_*.json trajectory point.
//
// Allocations per op are deterministic counts, so they gate reliably on
// shared CI runners; ns/op is recorded for the trajectory but never gated
// (wall-clock on shared hardware is noise).
//
//	go run ./scripts/benchreg -baseline BENCH_BASELINE.json -out BENCH_9.json
//	go run ./scripts/benchreg -update          # refresh the baseline in place
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Point is one benchmark's measurement.
type Point struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Nodes is the explored-nodes custom metric, when the benchmark
	// reports one; it turns the other columns into per-node costs.
	Nodes float64 `json:"explored_nodes,omitempty"`
}

// File is the schema shared by the baseline and the emitted trajectory
// point.
type File struct {
	Note       string           `json:"note,omitempty"`
	GoOS       string           `json:"goos"`
	GoArch     string           `json:"goarch"`
	Benchmarks map[string]Point `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line; value/unit pairs
// after the iteration count are parsed separately.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline to gate against")
	outPath := flag.String("out", "", "write the fresh measurements to this file (e.g. BENCH_9.json)")
	bench := flag.String("bench", "BenchmarkConsensus", "benchmark pattern to run")
	benchtime := flag.String("benchtime", "5x", "-benchtime passed to go test")
	threshold := flag.Float64("threshold", 0.10, "maximum tolerated allocs/op regression (fraction)")
	update := flag.Bool("update", false, "rewrite -baseline with the fresh measurements instead of gating")
	flag.Parse()

	fresh, err := run(*bench, *benchtime)
	if err != nil {
		fatal(err)
	}
	if len(fresh) == 0 {
		fatal(fmt.Errorf("no benchmarks matched %q", *bench))
	}
	out := &File{
		Note:       "allocs/op gated by scripts/benchreg; ns/op recorded for the trajectory only",
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Benchmarks: fresh,
	}
	if *outPath != "" {
		if err := writeJSON(*outPath, out); err != nil {
			fatal(err)
		}
	}
	if *update {
		if err := writeJSON(*baselinePath, out); err != nil {
			fatal(err)
		}
		fmt.Printf("benchreg: baseline %s updated (%d benchmarks)\n", *baselinePath, len(fresh))
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("read baseline (run with -update to create it): %w", err))
	}
	var base File
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse baseline %s: %w", *baselinePath, err))
	}

	regressed := false
	for name, b := range base.Benchmarks {
		f, ok := fresh[name]
		if !ok {
			fmt.Printf("benchreg: MISSING %s (baseline has it, run did not)\n", name)
			regressed = true
			continue
		}
		limit := float64(b.AllocsPerOp) * (1 + *threshold)
		switch {
		case float64(f.AllocsPerOp) > limit:
			fmt.Printf("benchreg: REGRESSION %s: %d allocs/op, baseline %d (limit %.0f)\n",
				name, f.AllocsPerOp, b.AllocsPerOp, limit)
			regressed = true
		default:
			fmt.Printf("benchreg: ok %s: %d allocs/op (baseline %d)\n", name, f.AllocsPerOp, b.AllocsPerOp)
		}
	}
	if regressed {
		fmt.Println("benchreg: FAIL — allocs/op regressed beyond the threshold")
		os.Exit(1)
	}
	fmt.Printf("benchreg: PASS (%d benchmarks within %.0f%%)\n", len(base.Benchmarks), *threshold*100)
}

// run executes the benchmark suite and parses its output.
func run(bench, benchtime string) (map[string]Point, error) {
	cmd := exec.Command("go", "test", "-run", "XXX",
		"-bench", bench, "-benchmem", "-benchtime", benchtime, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, out)
	}
	points := make(map[string]Point)
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		// Strip the -GOMAXPROCS suffix so names are machine-independent.
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		p, ok := parseMetrics(m[3])
		if !ok {
			continue
		}
		points[name] = p
	}
	return points, nil
}

// parseMetrics walks the "value unit value unit ..." tail of a result
// line. Only lines with a full -benchmem triple are recorded.
func parseMetrics(tail string) (Point, bool) {
	fields := strings.Fields(tail)
	var p Point
	var haveNs, haveBytes, haveAllocs bool
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return p, false
		}
		switch fields[i+1] {
		case "ns/op":
			p.NsPerOp, haveNs = v, true
		case "B/op":
			p.BytesPerOp, haveBytes = int64(v), true
		case "allocs/op":
			p.AllocsPerOp, haveAllocs = int64(v), true
		case "explored-nodes":
			p.Nodes = v
		}
	}
	return p, haveNs && haveBytes && haveAllocs
}

func writeJSON(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreg:", err)
	os.Exit(1)
}
