#!/usr/bin/env bash
# Waitfreed smoke: prove the daemon's durable-jobs loop end to end on a
# real process over the real wire.
#
# Boot waitfreed with a data dir and a short checkpoint autosave, submit
# a multi-second consensus job over HTTP, SIGKILL the daemon mid-job —
# no drain, no cleanup, the worst case — restart it over the same data
# dir, and assert that (a) the job resumed from its durable checkpoint
# rather than restarting, and (b) its final report is identical to a
# fresh uninterrupted run's of the same submission.
#
# Requires: go, jq, curl.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
pid=""
trap '[ -n "$pid" ] && kill -KILL "$pid" 2>/dev/null; rm -rf "$work"' EXIT

go build -o "$work/waitfreed" ./cmd/waitfreed

addr="127.0.0.1:18467"
base="http://$addr/v1"
# A workload long enough to straddle several autosave intervals: sticky
# 5-process consensus with symmetry reduction off (~seconds).
job='{"api":"v1","kind":"consensus","protocol":"sticky","procs":5,"explore":{"symmetry":"off"}}'

start_daemon() {
	"$work/waitfreed" -listen "$addr" -data "$work/jobs" -checkpoint-every 200ms 2>> "$work/daemon.log" &
	pid=$!
	for _ in $(seq 1 100); do
		curl -fsS "$base/healthz" > /dev/null 2>&1 && return 0
		kill -0 "$pid" 2>/dev/null || { echo "waitfreed-smoke: daemon died on start" >&2; cat "$work/daemon.log" >&2; exit 1; }
		sleep 0.1
	done
	echo "waitfreed-smoke: daemon never became healthy" >&2
	exit 1
}

# wait_job ID JQ_COND TRIES: poll until the job view satisfies the condition.
wait_job() {
	for _ in $(seq 1 "$3"); do
		view="$(curl -fsS "$base/jobs/$1")"
		if [ "$(jq -r "$2" <<< "$view")" = "true" ]; then
			printf '%s' "$view"
			return 0
		fi
		sleep 0.1
	done
	echo "waitfreed-smoke: job $1 never satisfied $2; last view: $view" >&2
	exit 1
}

echo "waitfreed-smoke: boot and submit"
start_daemon
id="$(curl -fsS -X POST "$base/jobs" -d "$job" | jq -r .id)"

echo "waitfreed-smoke: wait for the first durable checkpoint, then SIGKILL"
wait_job "$id" '.state == "running" and .has_checkpoint' 300 > /dev/null
kill -KILL "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "waitfreed-smoke: restart over the same data dir"
start_daemon
resumed="$(wait_job "$id" '.state == "done"' 1200)"
if [ "$(jq -r .resumes <<< "$resumed")" -lt 1 ]; then
	echo "waitfreed-smoke: FAIL — job restarted from scratch instead of resuming" >&2
	exit 1
fi
jq -c .report <<< "$resumed" > "$work/resumed.json"

echo "waitfreed-smoke: fresh uninterrupted run of the same submission"
fresh_id="$(curl -fsS -X POST "$base/jobs" -d "$job" | jq -r .id)"
wait_job "$fresh_id" '.state == "done"' 1200 | jq -c .report > "$work/fresh.json"

if ! diff "$work/resumed.json" "$work/fresh.json"; then
	echo "waitfreed-smoke: FAIL — resumed report differs from the fresh run" >&2
	exit 1
fi

# The SSE stream of a finished job replays its terminal state.
curl -fsS -N --max-time 10 "$base/jobs/$id/events" > "$work/events.txt" || true
grep -q '^event: done' "$work/events.txt" || {
	echo "waitfreed-smoke: FAIL — no done event on the finished job's stream" >&2
	exit 1
}

# Round two: the crash-recovery fault model over the wire. Same
# SIGKILL-mid-run discipline on a job whose exploration itself branches
# on crash and recovery edges — the resumed report must still be
# byte-identical to an uninterrupted run of the same submission.
cr_job='{"api":"v1","kind":"consensus","protocol":"sticky","procs":4,"explore":{"symmetry":"off","faults":{"max_crashes":1,"mode":"crash-recovery","max_recoveries":1}}}'

echo "waitfreed-smoke: submit a crash-recovery job, SIGKILL mid-run"
cr_id="$(curl -fsS -X POST "$base/jobs" -d "$cr_job" | jq -r .id)"
wait_job "$cr_id" '.state == "running" and .has_checkpoint' 300 > /dev/null
kill -KILL "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "waitfreed-smoke: restart and resume the crash-recovery job"
start_daemon
cr_resumed="$(wait_job "$cr_id" '.state == "done"' 1200)"
if [ "$(jq -r .resumes <<< "$cr_resumed")" -lt 1 ]; then
	echo "waitfreed-smoke: FAIL — crash-recovery job restarted instead of resuming" >&2
	exit 1
fi
if [ "$(jq -r '.report.consensus.faults.mode' <<< "$cr_resumed")" != "crash-recovery" ]; then
	echo "waitfreed-smoke: FAIL — resumed report does not echo the crash-recovery model" >&2
	exit 1
fi
jq -c .report <<< "$cr_resumed" > "$work/cr-resumed.json"

echo "waitfreed-smoke: fresh uninterrupted crash-recovery run"
cr_fresh_id="$(curl -fsS -X POST "$base/jobs" -d "$cr_job" | jq -r .id)"
wait_job "$cr_fresh_id" '.state == "done"' 1200 | jq -c .report > "$work/cr-fresh.json"

if ! diff "$work/cr-resumed.json" "$work/cr-fresh.json"; then
	echo "waitfreed-smoke: FAIL — resumed crash-recovery report differs from the fresh run" >&2
	exit 1
fi

# Graceful drain: SIGTERM exits cleanly.
kill -TERM "$pid"
wait "$pid" || { echo "waitfreed-smoke: FAIL — daemon exited nonzero on SIGTERM" >&2; exit 1; }
pid=""

# Round three: the storage chaos leg. Boot over a job store whose every
# write fails (the scripted fault filesystem turns each CreateTemp into
# ENOSPC) and assert the daemon walks the degradation ladder instead of
# wedging or lying: submission is refused 503/storage_degraded, the
# health endpoint answers "degraded" with the store's counters attached,
# reads keep serving, and SIGTERM still drains clean.
echo "waitfreed-smoke: chaos — boot over a dead disk"
WAITFREED_FAULT_FS='createtemp:*:enospc' \
	"$work/waitfreed" -listen "$addr" -data "$work/chaos-jobs" 2>> "$work/daemon.log" &
pid=$!
for _ in $(seq 1 100); do
	curl -fsS "$base/healthz" > /dev/null 2>&1 && break
	kill -0 "$pid" 2>/dev/null || { echo "waitfreed-smoke: chaos daemon died on start" >&2; cat "$work/daemon.log" >&2; exit 1; }
	sleep 0.1
done

echo "waitfreed-smoke: chaos — submissions must be refused, not wedged"
for _ in 1 2 3; do
	code="$(curl -sS -o "$work/chaos-submit.json" -w '%{http_code}' -X POST "$base/jobs" -d "$job")"
	if [ "$code" != 503 ] || [ "$(jq -r .error.code "$work/chaos-submit.json")" != storage_degraded ]; then
		echo "waitfreed-smoke: FAIL — submit on a dead disk returned $code $(cat "$work/chaos-submit.json")" >&2
		exit 1
	fi
done
health="$(curl -fsS "$base/healthz")"
if [ "$(jq -r .status <<< "$health")" != degraded ] || [ "$(jq -r .storage.degraded <<< "$health")" != true ]; then
	echo "waitfreed-smoke: FAIL — healthz does not report the sick disk: $health" >&2
	exit 1
fi
if [ "$(jq -r '.jobs | length' <<< "$(curl -fsS "$base/jobs")")" != 0 ]; then
	echo "waitfreed-smoke: FAIL — refused submissions leaked into the job table" >&2
	exit 1
fi
kill -TERM "$pid"
wait "$pid" || { echo "waitfreed-smoke: FAIL — degraded daemon exited nonzero on SIGTERM" >&2; exit 1; }
pid=""
echo "waitfreed-smoke: OK — resumed reports identical, degraded daemon refused instead of wedging"
