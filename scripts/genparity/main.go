// Command genparity regenerates the flat-layout parity fixtures under
// testdata/flatparity: canonicalized ConsensusReport JSON for a grid of
// protocols, memoization settings, and fault modes, plus a mid-run
// checkpoint file. The fixtures pin the engine's observable output across
// hot-path rewrites — TestFlatLayoutParity asserts that today's engine
// reproduces them byte-for-byte at every parallelism and symmetry level.
//
// Regenerate (only when the report format itself changes, never to paper
// over an engine difference):
//
//	go run ./scripts/genparity
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"waitfree/internal/consensus"
	"waitfree/internal/durable"
	"waitfree/internal/explore"
	"waitfree/internal/faults"
	"waitfree/internal/program"
)

// Case is one fixture of the parity grid. The JSON golden is the report of
// a sequential, symmetry-off run; the parity test replays the case at
// every parallelism and symmetry setting and demands identical bytes.
type Case struct {
	Name    string
	Impl    func() *program.Implementation
	K       int
	Memoize bool
	Faults  faults.Model
}

// Cases returns the fixture grid. Shared with the parity test via
// identical construction (the test rebuilds the same grid).
func Cases() []Case {
	crashStop := faults.Model{Mode: faults.CrashStop, MaxCrashes: 1}
	crashRecovery := faults.Model{Mode: faults.CrashRecovery, MaxCrashes: 1, MaxRecoveries: 1}
	return []Case{
		{Name: "sticky3", Impl: func() *program.Implementation { return consensus.Sticky(3) }, K: 2, Memoize: true},
		{Name: "sticky3_nomemo", Impl: func() *program.Implementation { return consensus.Sticky(3) }, K: 2, Memoize: false},
		{Name: "sticky3_crashstop", Impl: func() *program.Implementation { return consensus.Sticky(3) }, K: 2, Memoize: true, Faults: crashStop},
		{Name: "sticky3_crashrecovery", Impl: func() *program.Implementation { return consensus.Sticky(3) }, K: 2, Memoize: true, Faults: crashRecovery},
		{Name: "cas3", Impl: func() *program.Implementation { return consensus.CAS(3) }, K: 2, Memoize: true},
		{Name: "cas3_k3", Impl: func() *program.Implementation { return consensus.CAS(3) }, K: 3, Memoize: true},
		{Name: "cas3_crashstop_nomemo", Impl: func() *program.Implementation { return consensus.CAS(3) }, K: 2, Memoize: false, Faults: crashStop},
		{Name: "tas2_crashrecovery", Impl: consensus.TAS2, K: 2, Memoize: true, Faults: crashRecovery},
		{Name: "queue2_crashstop", Impl: consensus.Queue2, K: 2, Memoize: true, Faults: crashStop},
		{Name: "naiveregister2", Impl: consensus.NaiveRegister2, K: 2, Memoize: true},
		{Name: "fetchcons3", Impl: func() *program.Implementation { return consensus.FetchCons(3) }, K: 2, Memoize: true},
	}
}

// Options builds the exploration options of a case at the given
// parallelism and symmetry mode.
func (c Case) Options(parallelism int, symmetry explore.SymmetryMode) explore.Options {
	return explore.Options{
		Memoize:     c.Memoize,
		Faults:      c.Faults,
		Parallelism: parallelism,
		Symmetry:    symmetry,
	}
}

// CanonicalJSON renders a report with its run-varying observational fields
// (Stats, Checkpoint) stripped, indented — the byte form the goldens pin.
func CanonicalJSON(rep *explore.ConsensusReport) ([]byte, error) {
	clone := *rep
	clone.Stats = nil
	clone.Checkpoint = nil
	data, err := json.MarshalIndent(&clone, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ResumeFixture describes the mid-run checkpoint fixture: a sequential
// sticky3 run stopped by a node budget, its checkpoint saved verbatim. The
// parity test resumes from the file and must land on the sticky3 golden.
const (
	ResumeCase     = "sticky3"
	ResumeFile     = "resume_sticky3.wfcp"
	resumeMaxNodes = 300
)

func main() {
	dir := filepath.Join("testdata", "flatparity")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, c := range Cases() {
		rep, err := explore.ConsensusKContext(context.Background(), c.Impl(), c.K, c.Options(1, explore.SymmetryOff))
		if err != nil {
			log.Fatalf("%s: %v", c.Name, err)
		}
		data, err := CanonicalJSON(rep)
		if err != nil {
			log.Fatalf("%s: %v", c.Name, err)
		}
		path := filepath.Join(dir, c.Name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}

	// The resume fixture: stop the ResumeCase run early and save its
	// checkpoint. Sequential and node-budgeted, so the captured frontier is
	// deterministic.
	var rc Case
	for _, c := range Cases() {
		if c.Name == ResumeCase {
			rc = c
		}
	}
	opts := rc.Options(1, explore.SymmetryOff)
	opts.MaxNodes = resumeMaxNodes
	rep, err := explore.ConsensusKContext(context.Background(), rc.Impl(), rc.K, opts)
	if err != nil {
		log.Fatalf("resume fixture: %v", err)
	}
	if !rep.Partial || rep.Checkpoint == nil {
		log.Fatalf("resume fixture run was not partial (nodes=%d); lower resumeMaxNodes", rep.Nodes)
	}
	path := filepath.Join(dir, ResumeFile)
	if err := durable.Save(path, rep.Checkpoint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d/%d trees)\n", path, len(rep.Checkpoint.Trees), rep.Checkpoint.Roots)
}
