package waitfree_test

import (
	"fmt"

	"waitfree"
)

// ExampleEliminateRegisters runs the paper's Theorem 5 pipeline on the
// classic queue-based consensus protocol.
func ExampleEliminateRegisters() {
	report, err := waitfree.EliminateRegisters(
		waitfree.Queue2Consensus(), waitfree.ExploreOptions{}, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(report.Summary())
	// Output:
	// queue-2consensus: D=5, 2 registers -> 4 one-use bits -> 4 queue objects; output D=6, ok=true
}

// ExampleCheckConsensus model-checks a register-free protocol over every
// proposal vector and interleaving.
func ExampleCheckConsensus() {
	report, err := waitfree.CheckConsensus(
		waitfree.CASConsensus(2), waitfree.ExploreOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(report.Summary())
	// Output:
	// OK: procs=2 roots=4 D=2 nodes=20 leaves=8 agreement=true validity=true waitfree=true
}

// ExampleFindPair discovers the Section 5.2 witness by which a queue
// implements a one-use bit.
func ExampleFindPair() {
	pair, err := waitfree.FindPair(
		waitfree.NewQueue(2, 2, 3), []waitfree.State{waitfree.QueueStateOf()}, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(pair)
	// Output:
	// q=; H1=[deq]@port1 -> empty; H2=enq@port2 then H1 -> val(0)
}

// ExampleIsTrivial shows the paper's triviality boundary: a type whose
// responses carry no information implements nothing.
func ExampleIsTrivial() {
	trivialType, _ := waitfree.IsTrivial(waitfree.NewBeacon(2), []waitfree.State{0}, 3)
	usefulType, _ := waitfree.IsTrivial(waitfree.NewTestAndSet(2), []waitfree.State{0}, 3)
	fmt.Println(trivialType, usefulType)
	// Output:
	// true false
}

// ExampleComputeValency exposes the FLP/Herlihy bivalence structure of a
// consensus protocol's execution tree.
func ExampleComputeValency() {
	report, err := waitfree.ComputeValency(
		waitfree.TAS2Consensus(), []int{0, 1}, waitfree.ExploreOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("initial bivalent:", report.InitialBivalent)
	fmt.Println("critical configurations:", len(report.Critical))
	// Output:
	// initial bivalent: true
	// critical configurations: 1
}
