package waitfree

import (
	"context"
	"errors"
)

// Stable machine-readable error codes for the sentinel zoo. The wire API
// (internal/server) maps them to HTTP statuses and {"error": {"code",
// "message"}} bodies; library callers can switch on them without chaining
// errors.Is over every sentinel. Codes are part of the v1 wire contract:
// existing values never change, new sentinels get new codes.
const (
	// CodeOK is the empty code of a nil error.
	CodeOK = ""
	// CodeBadRequest: the request itself is malformed (ErrBadRequest,
	// ErrBadExploreOptions, ErrBadFaultModel, ErrUnknownProtocol).
	CodeBadRequest = "bad_request"
	// CodeUnknownProtocol: a name is not in the protocol or object-set
	// registry. Refines CodeBadRequest.
	CodeUnknownProtocol = "unknown_protocol"
	// CodeNotWaitFree: verification refuted the input (access bounds or
	// elimination on an implementation that is not correct wait-free
	// consensus).
	CodeNotWaitFree = "not_wait_free"
	// CodeInconclusive: exploration stopped with partial coverage before
	// settling the property; resume from the report's checkpoint.
	CodeInconclusive = "inconclusive"
	// CodeNotSymmetric: SymmetryRequire was set but the run cannot be
	// symmetry-reduced.
	CodeNotSymmetric = "not_symmetric"
	// CodeUncacheable: the request's report is not a pure function of the
	// request, so the result cache refused it.
	CodeUncacheable = "uncacheable"
	// CodeBadCheckpoint: a resume checkpoint does not match the run it was
	// offered to.
	CodeBadCheckpoint = "bad_checkpoint"
	// CodeCorruptCheckpoint: a durable checkpoint or envelope failed its
	// integrity checks.
	CodeCorruptCheckpoint = "corrupt_checkpoint"
	// CodeStalled: the stall watchdog flagged a worker making no progress.
	CodeStalled = "stalled"
	// CodePanic: protocol code panicked and was converted into a
	// structured error by an engine's recovery layer.
	CodePanic = "panic"
	// CodeNoProtocol: the synthesis space is exhausted; no protocol exists
	// within the bound.
	CodeNoProtocol = "no_protocol"
	// CodeSynthBudget: the synthesis budget ran out; verdict unknown.
	CodeSynthBudget = "synth_budget"
	// CodeAuditInconclusive: a spec audit ran out of state budget before
	// verifying every declared flag.
	CodeAuditInconclusive = "audit_inconclusive"
	// CodeBadReport: bytes offered to DecodeReport are not a
	// current-schema report.
	CodeBadReport = "bad_report"
	// CodeCanceled / CodeDeadline: the caller's context stopped the run.
	CodeCanceled = "canceled"
	CodeDeadline = "deadline_exceeded"
	// CodeInternal is the fallback for errors outside the taxonomy.
	CodeInternal = "internal"
)

// ErrorCode maps err to its stable snake_case code. A nil error maps to
// CodeOK; wrapped sentinels are unwrapped with errors.Is, most specific
// first; anything outside the taxonomy maps to CodeInternal.
func ErrorCode(err error) string {
	if err == nil {
		return CodeOK
	}
	var stall *StallError
	var panicErr *PanicError
	switch {
	case errors.Is(err, ErrUnknownProtocol):
		return CodeUnknownProtocol
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, ErrBadExploreOptions),
		errors.Is(err, ErrBadFaultModel):
		return CodeBadRequest
	case errors.Is(err, ErrBadReport):
		return CodeBadReport
	case errors.Is(err, ErrBadCheckpoint):
		return CodeBadCheckpoint
	case errors.Is(err, ErrCorruptCheckpoint):
		return CodeCorruptCheckpoint
	case errors.Is(err, ErrNotSymmetric):
		return CodeNotSymmetric
	case errors.Is(err, ErrNotWaitFree):
		return CodeNotWaitFree
	case errors.Is(err, ErrInconclusive):
		return CodeInconclusive
	case errors.Is(err, ErrUncacheable):
		return CodeUncacheable
	case errors.Is(err, ErrNoProtocol):
		return CodeNoProtocol
	case errors.Is(err, ErrSynthBudget):
		return CodeSynthBudget
	case errors.Is(err, ErrAuditInconclusive):
		return CodeAuditInconclusive
	case errors.As(err, &stall):
		return CodeStalled
	case errors.As(err, &panicErr):
		return CodePanic
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	}
	return CodeInternal
}
