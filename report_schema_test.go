package waitfree

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// The v1 report schema is pinned by a golden file: a canonical CAS(2)
// consensus report must marshal byte-identically to
// testdata/report_v1.golden.json. A failure here means the JSON shape
// changed — rename, retype, reorder, or removal — which is a wire-contract
// break: either revert the change or bump ReportSchema and regenerate
// with `go test -run TestReportGolden -update .`.
func TestReportGoldenV1(t *testing.T) {
	im, err := BuildProtocol("cas", 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(context.Background(), Request{
		Kind:           KindConsensus,
		Implementation: im,
		Explore:        ExploreOptions{Memoize: true, Parallelism: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Canonicalize()
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "report_v1.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report JSON diverged from the pinned v1 schema.\ngot:\n%s\nwant:\n%s\n(an intentional change must bump ReportSchema and regenerate with -update)", got, want)
	}
}

func TestReportSchemaStamp(t *testing.T) {
	im, err := BuildProtocol("sticky", 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(context.Background(), Request{Kind: KindConsensus, Implementation: im})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("fresh report carries schema %d, want %d", rep.Schema, ReportSchema)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatalf("DecodeReport round trip: %v", err)
	}
	if back.Kind != rep.Kind || back.Schema != ReportSchema {
		t.Fatalf("round trip lost the discriminators: kind=%q schema=%d", back.Kind, back.Schema)
	}
	re, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, re) {
		t.Error("marshal → DecodeReport → marshal is not byte-identical")
	}
}

func TestDecodeReportRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage", "not json"},
		{"missing schema", `{"kind":"consensus","elapsed_ns":0}`},
		{"future schema", `{"schema":99,"kind":"consensus","elapsed_ns":0}`},
		{"unknown kind", `{"schema":1,"kind":"mystery","elapsed_ns":0}`},
	}
	for _, c := range cases {
		if _, err := DecodeReport([]byte(c.data)); !errors.Is(err, ErrBadReport) {
			t.Errorf("%s: got %v, want ErrBadReport", c.name, err)
		}
	}
}
